//! Deterministic random-number streams.
//!
//! Reproducibility requires more than a single seed: if every stochastic
//! component drew from one generator, adding a draw anywhere would perturb
//! every subsequent sample. Instead, each component gets its own *stream*,
//! derived from a master seed and a stable string label via a SplitMix64
//! mixing step. Streams are independent `StdRng` instances, so two runs with
//! the same master seed produce identical traces regardless of event
//! interleaving between components (common random numbers across policies
//! also falls out of this: the workload stream is shared, the machine
//! streams are shared, only the scheduling decisions differ).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finaliser: excellent avalanche, standard seed-stretcher.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to fold stream names into the seed.
#[inline]
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Factory for named, independent random streams under one master seed.
#[derive(Debug, Clone, Copy)]
pub struct StreamSeeder {
    master: u64,
}

impl StreamSeeder {
    /// Creates a seeder from a master seed.
    pub fn new(master: u64) -> Self {
        StreamSeeder { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the 64-bit seed of the stream `label`/`index`.
    pub fn stream_seed(&self, label: &str, index: u64) -> u64 {
        let mixed = splitmix64(self.master ^ fnv1a(label));
        splitmix64(mixed ^ splitmix64(index.wrapping_add(0xA5A5_A5A5_A5A5_A5A5)))
    }

    /// Creates the RNG for stream `label`/`index`.
    ///
    /// `label` names the component ("arrivals", "machine-avail", ...);
    /// `index` distinguishes instances (machine id, replication number, ...).
    pub fn stream(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.stream_seed(label, index))
    }

    /// A seeder for a sub-domain (e.g. one replication of an experiment),
    /// itself able to hand out streams.
    pub fn subdomain(&self, label: &str, index: u64) -> StreamSeeder {
        StreamSeeder {
            master: self.stream_seed(label, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let s = StreamSeeder::new(42);
        let a: Vec<u32> = s
            .stream("arrivals", 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = s
            .stream("arrivals", 0)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_different_streams() {
        let s = StreamSeeder::new(42);
        assert_ne!(s.stream_seed("arrivals", 0), s.stream_seed("machines", 0));
        assert_ne!(s.stream_seed("arrivals", 0), s.stream_seed("arrivals", 1));
    }

    #[test]
    fn different_masters_different_streams() {
        let a = StreamSeeder::new(1).stream_seed("x", 0);
        let b = StreamSeeder::new(2).stream_seed("x", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn subdomain_is_stable_and_distinct() {
        let s = StreamSeeder::new(7);
        let r0 = s.subdomain("rep", 0);
        let r0b = s.subdomain("rep", 0);
        let r1 = s.subdomain("rep", 1);
        assert_eq!(r0.stream_seed("m", 3), r0b.stream_seed("m", 3));
        assert_ne!(r0.stream_seed("m", 3), r1.stream_seed("m", 3));
        assert_ne!(r0.stream_seed("m", 3), s.stream_seed("m", 3));
    }

    #[test]
    fn splitmix_avalanche_sanity() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0);
        let b = splitmix64(1);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
