//! Event handles and queue entries shared by the queue implementations.

use crate::time::SimTime;

/// Opaque handle identifying a scheduled event, usable for cancellation.
///
/// Handles are unique for the lifetime of a queue; they are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// A handle that no queue will ever issue; useful as a sentinel.
    pub const NONE: EventId = EventId(u64::MAX);

    /// Raw value, for diagnostics.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event entry: firing time, insertion sequence (ties broken FIFO) and
/// the caller's payload.
#[derive(Debug, Clone)]
pub(crate) struct Entry<E> {
    pub time: SimTime,
    pub id: EventId,
    pub payload: E,
}

impl<E> Entry<E> {
    /// Queue key: earlier time first; equal times in insertion order.
    #[inline]
    pub fn key(&self) -> (SimTime, u64) {
        (self.time, self.id.0)
    }
}
