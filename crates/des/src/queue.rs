//! Pending-event set implementations.
//!
//! Three interchangeable priority queues are provided:
//!
//! * [`BinaryHeapQueue`] — `std::collections::BinaryHeap` over *batches* of
//!   same-timestamp events, with dense id-bitmap bookkeeping and lazy
//!   cancellation plus tombstone compaction. The default: cache-friendly
//!   and cheap even under the kill-relaunch storms of aggressive
//!   replication policies.
//! * [`CalendarQueue`] — a Brown-style calendar queue with adaptive bucket
//!   width, O(1) amortised enqueue/dequeue when event-time increments are
//!   well behaved. Provided for large-scale runs and benchmarked against
//!   the heap in `dgsched-bench`.
//! * [`BTreeQueue`] — an ordered-map queue with *eager* cancellation
//!   (O(log n) true removal, no tombstones). The reference implementation
//!   the other two are property-tested against.
//!
//! All honour the same contract, captured by [`PendingEvents`]: events pop
//! in non-decreasing time order, ties break in insertion (FIFO) order, and
//! cancelled events never pop.

use crate::event::{Entry, EventId};
use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::binary_heap::PeekMut;
use std::collections::{BTreeMap, BinaryHeap, HashSet, VecDeque};

/// Common interface of the pending-event set.
pub trait PendingEvents<E> {
    /// Schedules `payload` to fire at `time`, returning a cancellation handle.
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId;

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. this call removed it), `false` if it had already
    /// fired or been cancelled.
    fn cancel(&mut self, id: EventId) -> bool;

    /// Removes and returns the earliest pending event.
    fn pop(&mut self) -> Option<(SimTime, EventId, E)>;

    /// Firing time of the earliest pending event, if any.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of live (non-cancelled) pending events.
    fn len(&self) -> usize;

    /// True when no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dense bitmap over sequentially issued event ids. Ids are allocated from
/// a counter, so a bit vector indexed by id replaces a hash set: O(1)
/// membership with no hashing, one bit per id ever issued.
#[derive(Default)]
struct IdBits {
    words: Vec<u64>,
}

impl IdBits {
    /// Sets the bit for `id`, growing the map as needed.
    #[inline]
    fn set(&mut self, id: u64) {
        let w = (id >> 6) as usize;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (id & 63);
    }

    /// True when the bit for `id` is set. Out-of-range ids (never issued,
    /// or the `EventId::NONE` sentinel) read as unset.
    #[inline]
    fn get(&self, id: u64) -> bool {
        self.words
            .get((id >> 6) as usize)
            .is_some_and(|&w| w >> (id & 63) & 1 == 1)
    }

    /// Clears the bit for `id`; returns whether it was set.
    #[inline]
    fn clear(&mut self, id: u64) -> bool {
        match self.words.get_mut((id >> 6) as usize) {
            Some(w) => {
                let mask = 1 << (id & 63);
                let was = *w & mask != 0;
                *w &= !mask;
                was
            }
            None => false,
        }
    }
}

/// Batch storage. In a simulation with continuous event times almost every
/// batch holds exactly one event, so the singleton case lives inline in the
/// heap node — no deque allocation, and popping it touches no memory beyond
/// the node itself. Only a genuine timestamp tie upgrades to a deque.
enum Items<E> {
    /// Zero or one event; `None` marks an exhausted batch.
    One(Option<(u64, E)>),
    /// Two or more events (or the drained remains of such a batch),
    /// front-to-back in insertion order.
    Many(VecDeque<(u64, E)>),
}

impl<E> Items<E> {
    #[inline]
    fn front_id(&self) -> Option<u64> {
        match self {
            Items::One(slot) => slot.as_ref().map(|&(id, _)| id),
            Items::Many(deque) => deque.front().map(|&(id, _)| id),
        }
    }

    #[inline]
    fn pop_front(&mut self) -> Option<(u64, E)> {
        match self {
            Items::One(slot) => slot.take(),
            Items::Many(deque) => deque.pop_front(),
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        match self {
            Items::One(slot) => slot.is_none(),
            Items::Many(deque) => deque.is_empty(),
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&(u64, E)) -> bool) {
        match self {
            Items::One(slot) => {
                if slot.as_ref().is_some_and(|item| !keep(item)) {
                    *slot = None;
                }
            }
            Items::Many(deque) => deque.retain(|item| keep(item)),
        }
    }
}

/// A run of events sharing one firing time, stored front-to-back in
/// insertion order. Because ids are issued sequentially and a batch only
/// ever grows at the open tail, ids within a batch are strictly increasing,
/// so popping from the front preserves FIFO tie order.
struct Batch<E> {
    time: SimTime,
    items: Items<E>,
}

impl<E> Batch<E> {
    /// Queue key of the batch: its time and the id of its earliest event.
    #[inline]
    fn key(&self) -> (SimTime, u64) {
        let front = self.items.front_id().expect("batch is never empty");
        (self.time, front)
    }

    /// Appends an event at the open tail, upgrading a singleton to deque
    /// storage (recycled from `spare` when possible) on a timestamp tie.
    fn push_back(&mut self, id: u64, payload: E, spare: &mut Vec<VecDeque<(u64, E)>>) {
        match &mut self.items {
            Items::One(slot) => {
                let mut deque = spare.pop().unwrap_or_default();
                debug_assert!(deque.is_empty());
                if let Some(first) = slot.take() {
                    deque.push_back(first);
                }
                deque.push_back((id, payload));
                self.items = Items::Many(deque);
            }
            Items::Many(deque) => deque.push_back((id, payload)),
        }
    }
}

// Min-heap adapter: BinaryHeap is a max-heap, so order batches by reversed
// key. The key is cached inline so sift comparisons never chase into the
// batch storage; it grows as the batch front is consumed, and `take_front`
// refreshes it before `PeekMut`'s drop glue re-sifts.
struct HeapItem<E> {
    key: (SimTime, u64),
    batch: Batch<E>,
}

impl<E> HeapItem<E> {
    #[inline]
    fn new(batch: Batch<E>) -> Self {
        HeapItem {
            key: batch.key(),
            batch,
        }
    }
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for HeapItem<E> {}
impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.key.cmp(&self.key)
    }
}

/// Which structure currently holds the globally earliest event.
#[derive(Clone, Copy)]
enum Source {
    Tail,
    Heap,
}

/// Binary-heap pending-event set with same-timestamp batching, dense
/// id-bitmap bookkeeping and compacted lazy cancellation.
///
/// Consecutive schedules at the same timestamp coalesce into one heap node
/// (the open *tail* batch), so a storm of simultaneous renewals or repairs
/// costs one heap operation instead of k. Cancellation flips a bit; when
/// tombstones outnumber live events the heap is rebuilt without them, so
/// resident memory stays proportional to live events.
pub struct BinaryHeapQueue<E> {
    heap: BinaryHeap<HeapItem<E>>,
    /// The most recent batch, still open for same-time appends; not yet in
    /// the heap. Its ids are the largest issued, so on a time tie with a
    /// heap batch the heap batch pops first — FIFO is preserved.
    tail: Option<Batch<E>>,
    /// Ids scheduled but not yet popped or cancelled.
    pending: IdBits,
    /// Ids cancelled but still physically resident (lazy deletion).
    cancelled: IdBits,
    next_id: u64,
    /// Live (non-cancelled) pending events.
    live: usize,
    /// Cancelled events still resident in `heap` or `tail`.
    dead: usize,
    /// Emptied batch deques, kept for reuse so steady-state scheduling
    /// allocates nothing.
    spare: Vec<VecDeque<(u64, E)>>,
}

impl<E> Default for BinaryHeapQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BinaryHeapQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::new(),
            tail: None,
            pending: IdBits::default(),
            cancelled: IdBits::default(),
            next_id: 0,
            live: 0,
            dead: 0,
            spare: Vec::new(),
        }
    }

    /// Creates an empty queue with capacity for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        BinaryHeapQueue {
            heap: BinaryHeap::with_capacity(cap),
            tail: None,
            pending: IdBits::default(),
            cancelled: IdBits::default(),
            next_id: 0,
            live: 0,
            dead: 0,
            spare: Vec::new(),
        }
    }

    /// Retires an exhausted batch's storage for reuse. Singleton batches
    /// own no storage; only drained deques are worth keeping.
    #[inline]
    fn recycle(&mut self, items: Items<E>) {
        debug_assert!(items.is_empty());
        if let Items::Many(deque) = items {
            if self.spare.len() < 64 {
                self.spare.push(deque);
            }
        }
    }

    /// Key and location of the globally earliest resident event (live or
    /// tombstoned), or `None` when nothing is resident.
    #[inline]
    fn front(&self) -> Option<(Source, SimTime, u64)> {
        let tail = self.tail.as_ref().map(Batch::key);
        let heap = self.heap.peek().map(|b| b.key);
        match (tail, heap) {
            (None, None) => None,
            (Some((t, i)), None) => Some((Source::Tail, t, i)),
            (None, Some((t, i))) => Some((Source::Heap, t, i)),
            (Some(tk), Some(hk)) => {
                if tk < hk {
                    Some((Source::Tail, tk.0, tk.1))
                } else {
                    Some((Source::Heap, hk.0, hk.1))
                }
            }
        }
    }

    /// Removes and returns the front event of the batch at `src`, dropping
    /// the batch once exhausted.
    fn take_front(&mut self, src: Source) -> (SimTime, u64, E) {
        match src {
            Source::Tail => {
                let batch = self.tail.as_mut().expect("front reported a tail");
                let (id, payload) = batch.items.pop_front().expect("batch is never empty");
                let time = batch.time;
                if batch.items.is_empty() {
                    let spent = self.tail.take().expect("just borrowed").items;
                    self.recycle(spent);
                }
                (time, id, payload)
            }
            Source::Heap => {
                let mut top = self.heap.peek_mut().expect("front reported a heap batch");
                let (id, payload) = top.batch.items.pop_front().expect("batch is never empty");
                let time = top.batch.time;
                if top.batch.items.is_empty() {
                    let spent = PeekMut::pop(top).batch.items;
                    self.recycle(spent);
                } else {
                    top.key = top.batch.key();
                }
                (time, id, payload)
            }
        }
    }

    /// Rebuilds the heap without tombstones. Relative order of survivors is
    /// untouched (batches keep their time and ascending-id runs), so pop
    /// order is unchanged; only the dead weight goes.
    fn compact(&mut self) {
        let mut batches: Vec<Batch<E>> = self.heap.drain().map(|b| b.batch).collect();
        if let Some(t) = self.tail.take() {
            batches.push(t);
        }
        let cancelled = &mut self.cancelled;
        for batch in &mut batches {
            batch.items.retain(|&(id, _)| !cancelled.clear(id));
        }
        let mut survivors = Vec::with_capacity(batches.len());
        for batch in batches {
            if batch.items.is_empty() {
                self.recycle(batch.items);
            } else {
                survivors.push(HeapItem::new(batch));
            }
        }
        self.heap = survivors.into();
        self.dead = 0;
    }
}

impl<E> PendingEvents<E> for BinaryHeapQueue<E> {
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.set(id);
        self.live += 1;
        match &mut self.tail {
            Some(batch) if batch.time == time => batch.push_back(id, payload, &mut self.spare),
            tail => {
                if let Some(prev) = tail.take() {
                    self.heap.push(HeapItem::new(prev));
                }
                *tail = Some(Batch {
                    time,
                    items: Items::One(Some((id, payload))),
                });
            }
        }
        EventId(id)
    }

    fn cancel(&mut self, id: EventId) -> bool {
        // Only ids that are still pending may be cancelled; ids that already
        // fired (or were cancelled, or were never issued) have a clear bit.
        if self.pending.clear(id.0) {
            self.cancelled.set(id.0);
            self.live -= 1;
            self.dead += 1;
            if self.dead > self.live + 64 {
                self.compact();
            }
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        loop {
            // Leading tombstones of the front batch are globally minimal,
            // so they can be dropped in bulk here — one re-sift per batch
            // visit instead of one per tombstone.
            let (src, _, _) = self.front()?;
            match src {
                Source::Tail => {
                    let batch = self.tail.as_mut().expect("front reported a tail");
                    let time = batch.time;
                    while let Some((id, payload)) = batch.items.pop_front() {
                        if self.cancelled.clear(id) {
                            self.dead -= 1;
                            continue;
                        }
                        self.pending.clear(id);
                        self.live -= 1;
                        if batch.items.is_empty() {
                            let spent = self.tail.take().expect("just borrowed").items;
                            self.recycle(spent);
                        }
                        return Some((time, EventId(id), payload));
                    }
                    // The whole batch was tombstones.
                    let spent = self.tail.take().expect("just borrowed").items;
                    self.recycle(spent);
                }
                Source::Heap => {
                    let mut top = self.heap.peek_mut().expect("front reported a heap batch");
                    let time = top.batch.time;
                    let mut taken = None;
                    while let Some((id, payload)) = top.batch.items.pop_front() {
                        if self.cancelled.clear(id) {
                            self.dead -= 1;
                            continue;
                        }
                        self.pending.clear(id);
                        self.live -= 1;
                        taken = Some((time, EventId(id), payload));
                        break;
                    }
                    if top.batch.items.is_empty() {
                        let spent = PeekMut::pop(top).batch.items;
                        self.recycle(spent);
                    } else {
                        top.key = top.batch.key();
                    }
                    if taken.is_some() {
                        return taken;
                    }
                }
            }
        }
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let (src, time, id) = self.front()?;
            if !self.cancelled.get(id) {
                return Some(time);
            }
            self.take_front(src);
            self.cancelled.clear(id);
            self.dead -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Brown's calendar queue: an array of "day" buckets spanning one "year";
/// events beyond the current year sit in their bucket and are skipped until
/// the year wraps around to them. Bucket count and width adapt to the live
/// event population to keep bucket occupancy near one.
pub struct CalendarQueue<E> {
    buckets: Vec<Vec<Entry<E>>>,
    bucket_width: f64,
    /// Index of the bucket the current scan position is in.
    cursor: usize,
    /// Start time of the bucket under the cursor.
    cursor_time: f64,
    /// Ids scheduled but not yet popped or cancelled.
    // dgsched-analyze: allow(unordered-iter) -- event-id membership probe; never iterated, pop order comes from the bucket scan
    pending: HashSet<u64>,
    /// Ids cancelled but still physically in a bucket (lazy deletion).
    // dgsched-analyze: allow(unordered-iter) -- lazy-deletion membership probe; never iterated
    cancelled: HashSet<u64>,
    next_id: u64,
    live: usize,
    resize_enabled: bool,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    const MIN_BUCKETS: usize = 4;

    /// Largest quotient `t / width` the index/anchor math treats as an
    /// exact integer; beyond this, `floor`/casts lose whole years.
    const MAX_EXACT_QUOTIENT: f64 = (1u64 << 53) as f64;

    /// Start of the calendar year containing `t`: the largest multiple of
    /// `width` at or below `t`. Two far-future hazards are handled here.
    /// `t / width` can exceed integer fp precision (or overflow to ∞), in
    /// which case the year is anchored at `t` itself — a legal anchor,
    /// since the scan only needs `year_start ≤ t`. And `⌊t/width⌋·width`
    /// can land *past* `t` when `t / width` rounds up to a whole integer,
    /// which would let the forward scan skip an event at exactly `t`; the
    /// result is clamped back below `t`.
    fn year_start(t: f64, width: f64) -> f64 {
        let q = t / width;
        if !q.is_finite() || q.abs() >= Self::MAX_EXACT_QUOTIENT {
            return t;
        }
        let mut start = q.floor() * width;
        if start > t {
            start -= width;
        }
        if start > t || !start.is_finite() {
            start = t;
        }
        start
    }

    /// Creates an empty calendar queue with default geometry.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..Self::MIN_BUCKETS).map(|_| Vec::new()).collect(),
            bucket_width: 1.0,
            cursor: 0,
            cursor_time: 0.0,
            // dgsched-analyze: allow(unordered-iter) -- constructor for the membership sets annotated above
            pending: HashSet::new(),
            // dgsched-analyze: allow(unordered-iter) -- constructor for the membership sets annotated above
            cancelled: HashSet::new(),
            next_id: 0,
            live: 0,
            resize_enabled: true,
        }
    }

    #[inline]
    fn bucket_index(&self, t: f64) -> usize {
        let n = self.buckets.len();
        let q = t / self.bucket_width;
        if q.is_finite() && q < Self::MAX_EXACT_QUOTIENT {
            (q as usize) % n
        } else {
            // Far-future events: `q as usize` saturates at usize::MAX,
            // aliasing every such event into one bucket. fp remainder is
            // exact, so spread them by their true year index instead; the
            // `t < year_end` guard in the scan keeps ordering correct
            // whatever bucket an event lands in.
            let r = q.rem_euclid(n as f64);
            if r.is_finite() {
                (r as usize).min(n - 1)
            } else {
                0
            }
        }
    }

    /// Estimates a good bucket width by sampling inter-event gaps near the
    /// head of the queue, then rebuilds the calendar.
    fn resize(&mut self, new_len: usize) {
        let nbuckets = new_len.next_power_of_two().max(Self::MIN_BUCKETS);
        // Sample up to 32 events with the smallest times to estimate spacing.
        let mut times: Vec<f64> = self
            .buckets
            .iter()
            .flatten()
            .filter(|e| !self.cancelled.contains(&e.id.0))
            .map(|e| e.time.as_secs())
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times.truncate(32);
        let width = if times.len() >= 2 {
            let span = times[times.len() - 1] - times[0];
            let mean_gap = span / (times.len() - 1) as f64;
            // Brown's heuristic: three times the mean gap keeps occupancy ~1.
            (3.0 * mean_gap).max(1e-9)
        } else {
            self.bucket_width
        };

        let old: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.bucket_width = width;
        // Re-anchor the cursor at the earliest live event (or keep position).
        let anchor = old
            .iter()
            .filter(|e| !self.cancelled.contains(&e.id.0))
            .map(|e| e.time.as_secs())
            .fold(f64::INFINITY, f64::min);
        let anchor = if anchor.is_finite() {
            anchor
        } else {
            self.cursor_time
        };
        self.cursor = self.bucket_index(anchor);
        self.cursor_time = Self::year_start(anchor, self.bucket_width);
        for e in old {
            let idx = self.bucket_index(e.time.as_secs());
            self.buckets[idx].push(e);
        }
    }

    fn maybe_grow(&mut self) {
        if self.resize_enabled && self.live > 2 * self.buckets.len() {
            self.resize(self.live);
        }
    }

    fn maybe_shrink(&mut self) {
        if self.resize_enabled
            && self.buckets.len() > Self::MIN_BUCKETS
            && self.live < self.buckets.len() / 2
        {
            self.resize(self.live.max(1));
        }
    }

    /// Finds the earliest live event and returns (bucket, position-in-bucket).
    fn find_min(&self) -> Option<(usize, usize)> {
        let mut best: Option<((SimTime, u64), usize, usize)> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (pi, e) in bucket.iter().enumerate() {
                if self.cancelled.contains(&e.id.0) {
                    continue;
                }
                let key = e.key();
                if best.map(|(bk, _, _)| key < bk).unwrap_or(true) {
                    best = Some((key, bi, pi));
                }
            }
        }
        best.map(|(_, bi, pi)| (bi, pi))
    }

    /// Scans forward from the cursor for the next event within the current
    /// year; falls back to a full minimum search when a whole year is empty.
    fn locate_next(&mut self) -> Option<(usize, usize)> {
        if self.live == 0 {
            return None;
        }
        let n = self.buckets.len();
        let mut cursor = self.cursor;
        let mut cursor_time = self.cursor_time;
        for _ in 0..n {
            let year_end = cursor_time + self.bucket_width;
            let mut best: Option<((SimTime, u64), usize)> = None;
            for (pi, e) in self.buckets[cursor].iter().enumerate() {
                if self.cancelled.contains(&e.id.0) {
                    continue;
                }
                let t = e.time.as_secs();
                if t < year_end {
                    let key = e.key();
                    if best.map(|(bk, _)| key < bk).unwrap_or(true) {
                        best = Some((key, pi));
                    }
                }
            }
            if let Some((_, pi)) = best {
                self.cursor = cursor;
                self.cursor_time = cursor_time;
                return Some((cursor, pi));
            }
            cursor = (cursor + 1) % n;
            cursor_time += self.bucket_width;
        }
        // A full year contained nothing due soon: do a direct search and jump.
        let (bi, pi) = self.find_min()?;
        let t = self.buckets[bi][pi].time.as_secs();
        self.cursor = bi;
        self.cursor_time = Self::year_start(t, self.bucket_width);
        Some((bi, pi))
    }

    fn purge_cancelled(&mut self, bi: usize) {
        let cancelled = &mut self.cancelled;
        self.buckets[bi].retain(|e| !cancelled.remove(&e.id.0));
    }
}

impl<E> PendingEvents<E> for CalendarQueue<E> {
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let t = time.as_secs();
        let idx = self.bucket_index(t);
        self.buckets[idx].push(Entry { time, id, payload });
        self.pending.insert(id.0);
        self.live += 1;
        // Maintain the invariant that every live event fires at or after the
        // start of the cursor year; otherwise the forward scan could pop a
        // later event first.
        if t < self.cursor_time {
            self.cursor = idx;
            self.cursor_time = Self::year_start(t, self.bucket_width);
        }
        self.maybe_grow();
        id
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if self.pending.remove(&id.0) {
            self.cancelled.insert(id.0);
            self.live -= 1;
            true
        } else {
            false
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let (bi, _pi) = self.locate_next()?;
        self.purge_cancelled(bi);
        // Positions shifted after the purge; find the minimum in the bucket
        // that is still due within the located year (it must exist: the
        // located event was live).
        let bucket = &mut self.buckets[bi];
        let min_pos = bucket
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.key())
            .map(|(i, _)| i)
            .expect("located bucket cannot be empty after purge");
        let e = bucket.swap_remove(min_pos);
        self.pending.remove(&e.id.0);
        self.live -= 1;
        self.maybe_shrink();
        Some((e.time, e.id, e.payload))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        let (bi, pi) = self.locate_next()?;
        Some(self.buckets[bi][pi].time)
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Ordered-map pending-event set with eager cancellation.
///
/// Keys are `(time-bits, id)`: `SimTime` is non-NaN and non-negative in
/// practice, so the IEEE-754 bit pattern of the time orders correctly and
/// gives a fully `Ord` key. Cancellation removes the entry outright —
/// no tombstones, so memory is exactly proportional to live events.
pub struct BTreeQueue<E> {
    map: BTreeMap<(u64, u64), (SimTime, E)>,
    /// id → key, so `cancel` can find the entry.
    // dgsched-analyze: allow(unordered-iter) -- id→key lookup table probed by event id; iteration order can't reach results (pop order comes from the BTreeMap)
    index: std::collections::HashMap<u64, (u64, u64)>,
    next_id: u64,
}

impl<E> Default for BTreeQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BTreeQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BTreeQueue {
            map: BTreeMap::new(),
            // dgsched-analyze: allow(unordered-iter) -- constructor for the lookup table annotated above
            index: std::collections::HashMap::new(),
            next_id: 0,
        }
    }

    #[inline]
    fn time_key(t: SimTime) -> u64 {
        let secs = t.as_secs();
        debug_assert!(
            secs >= 0.0,
            "BTreeQueue requires non-negative times (got {secs})"
        );
        secs.to_bits()
    }
}

impl<E> PendingEvents<E> for BTreeQueue<E> {
    fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        let id = EventId(self.next_id);
        self.next_id += 1;
        let key = (Self::time_key(time), id.0);
        self.map.insert(key, (time, payload));
        self.index.insert(id.0, key);
        id
    }

    fn cancel(&mut self, id: EventId) -> bool {
        match self.index.remove(&id.0) {
            Some(key) => {
                let removed = self.map.remove(&key);
                debug_assert!(removed.is_some(), "index out of sync");
                true
            }
            None => false,
        }
    }

    fn pop(&mut self) -> Option<(SimTime, EventId, E)> {
        let (key, (time, payload)) = self.map.pop_first()?;
        self.index.remove(&key.1);
        Some((time, EventId(key.1), payload))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.map.first_key_value().map(|(_, (t, _))| *t)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<Q: PendingEvents<u32>>(mut q: Q) {
        assert!(q.is_empty());
        let a = q.schedule(SimTime::new(5.0), 5);
        let _b = q.schedule(SimTime::new(1.0), 1);
        let c = q.schedule(SimTime::new(3.0), 3);
        assert_eq!(q.len(), 3);
        assert!(q.cancel(c));
        assert!(!q.cancel(c), "double cancel must be a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::new(1.0)));
        assert_eq!(q.pop().map(|(t, _, p)| (t.as_secs(), p)), Some((1.0, 1)));
        assert_eq!(q.pop().map(|(t, _, p)| (t.as_secs(), p)), Some((5.0, 5)));
        assert!(!q.cancel(a), "cancelling a fired event must return false");
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn heap_contract() {
        exercise(BinaryHeapQueue::new());
    }

    #[test]
    fn calendar_contract() {
        exercise(CalendarQueue::new());
    }

    #[test]
    fn btree_contract() {
        exercise(BTreeQueue::new());
    }

    #[test]
    fn btree_fifo_ties() {
        fifo_ties(BTreeQueue::new());
    }

    #[test]
    fn btree_cancel_is_eager() {
        let mut q = BTreeQueue::new();
        let ids: Vec<_> = (0..100)
            .map(|i| q.schedule(SimTime::new(i as f64), i))
            .collect();
        for id in &ids[..50] {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 50);
        // Internals hold exactly the live events (no tombstones).
        assert_eq!(q.map.len(), 50);
        assert_eq!(q.index.len(), 50);
        assert_eq!(q.pop().unwrap().2, 50);
    }

    fn fifo_ties<Q: PendingEvents<u32>>(mut q: Q) {
        for i in 0..10 {
            q.schedule(SimTime::new(7.0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn heap_fifo_ties() {
        fifo_ties(BinaryHeapQueue::new());
    }

    #[test]
    fn calendar_fifo_ties() {
        fifo_ties(CalendarQueue::new());
    }

    #[test]
    fn calendar_handles_spread_times() {
        let mut q = CalendarQueue::new();
        // Times spanning many "years" force the wrap-around path.
        let times = [1e6, 3.0, 0.5, 9e5, 12.0, 7e3, 2e6, 0.25];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::new(t), i as u32);
        }
        let mut popped = Vec::new();
        while let Some((t, _, _)) = q.pop() {
            popped.push(t.as_secs());
        }
        let mut sorted = times.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(popped, sorted);
    }

    #[test]
    fn calendar_far_future_does_not_collapse() {
        let mut q = CalendarQueue::new();
        // A dense cluster first, so the adaptive resize settles on a small
        // bucket width…
        for i in 0..64 {
            q.schedule(SimTime::new(i as f64 * 1e-3), i);
        }
        // …then events so far out that t / bucket_width leaves the exact
        // integer range entirely (the old index math saturated here and the
        // anchor could become non-finite).
        let far = [1e12, 2.5e18, 5e15, 1e300, 3e299];
        for (j, &t) in far.iter().enumerate() {
            q.schedule(SimTime::new(t), 1000 + j as u32);
        }
        let mut popped = Vec::new();
        while let Some((t, _, _)) = q.pop() {
            popped.push(t.as_secs());
        }
        assert_eq!(popped.len(), 64 + far.len());
        assert!(
            popped.windows(2).all(|w| w[0] <= w[1]),
            "pop order regressed: {popped:?}"
        );
        assert_eq!(popped[popped.len() - 1], 1e300);
    }

    #[test]
    fn calendar_interleaves_near_and_far_after_resize() {
        let mut q = CalendarQueue::<u32>::new();
        let far = q.schedule(SimTime::new(1e307), 0);
        for i in 0..32 {
            q.schedule(SimTime::new(1.0 + i as f64), 1 + i);
        }
        // Popping the near cluster triggers shrink-resizes whose anchor is
        // re-derived while the far event is still live.
        for want in 1..=32 {
            assert_eq!(q.pop().unwrap().2, want);
        }
        assert!(!q.cancel(EventId::NONE));
        assert_eq!(
            q.pop().map(|(t, id, _)| (t.as_secs(), id)),
            Some((1e307, far))
        );
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_year_start_never_exceeds_anchor() {
        type Q = CalendarQueue<u32>;
        // The fp-rounding trap: t / width rounds UP to a whole integer, so
        // ⌊t/w⌋·w lands past t unless clamped.
        let cases = [
            (1e16 + 2.0, 3.0),
            (0.3, 0.1),
            (1e305, 1e-9),   // quotient overflows to ∞
            (7.0e18, 0.125), // quotient beyond 2^53
            (0.0, 1.0),
            (5.0, 1.0),
        ];
        for (t, w) in cases {
            let start = Q::year_start(t, w);
            assert!(start.is_finite(), "year_start({t}, {w}) not finite");
            assert!(start <= t, "year_start({t}, {w}) = {start} > anchor");
            // The anchor must stay within one year of t whenever the
            // quotient is exactly representable.
            if (t / w).is_finite() && t / w < Q::MAX_EXACT_QUOTIENT {
                assert!(t - start <= 2.0 * w, "anchor drifted: {t} {w} {start}");
            }
        }
    }

    #[test]
    fn heap_interleaved_schedule_pop() {
        let mut q = BinaryHeapQueue::new();
        q.schedule(SimTime::new(10.0), 10);
        assert_eq!(q.pop().unwrap().2, 10);
        q.schedule(SimTime::new(2.0), 2);
        q.schedule(SimTime::new(1.0), 1);
        assert_eq!(q.pop().unwrap().2, 1);
        q.schedule(SimTime::new(0.5), 0);
        assert_eq!(q.pop().unwrap().2, 0);
        assert_eq!(q.pop().unwrap().2, 2);
    }

    #[test]
    fn cancel_none_sentinel_is_noop() {
        let mut q = BinaryHeapQueue::<u32>::new();
        assert!(!q.cancel(EventId::NONE));
        let mut c = CalendarQueue::<u32>::new();
        assert!(!c.cancel(EventId::NONE));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = BinaryHeapQueue::new();
        let head = q.schedule(SimTime::new(1.0), 1);
        q.schedule(SimTime::new(2.0), 2);
        q.cancel(head);
        assert_eq!(q.peek_time(), Some(SimTime::new(2.0)));
    }

    #[test]
    fn heap_coalesced_batches_interleave_with_singletons() {
        let mut q = BinaryHeapQueue::new();
        // Two same-time runs separated by other times: the first run is
        // pushed to the heap as a batch, the second stays in the tail.
        for i in 0..5 {
            q.schedule(SimTime::new(3.0), i);
        }
        q.schedule(SimTime::new(1.0), 100);
        for i in 5..10 {
            q.schedule(SimTime::new(3.0), i);
        }
        q.schedule(SimTime::new(2.0), 200);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![100, 200, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn heap_cancel_inside_batch() {
        let mut q = BinaryHeapQueue::new();
        let ids: Vec<_> = (0..6).map(|i| q.schedule(SimTime::new(4.0), i)).collect();
        q.schedule(SimTime::new(9.0), 99);
        assert!(q.cancel(ids[0]));
        assert!(q.cancel(ids[3]));
        assert!(q.cancel(ids[5]));
        assert_eq!(q.peek_time(), Some(SimTime::new(4.0)));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 4, 99]);
    }

    #[test]
    fn heap_compaction_preserves_order_and_counts() {
        let mut q = BinaryHeapQueue::new();
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for i in 0..1000u32 {
            // Clustered times force ties; cancel ~90% to trip compaction.
            let id = q.schedule(SimTime::new((i % 17) as f64), i);
            if i % 10 == 0 {
                live.push((i % 17, i));
            } else {
                dead.push(id);
            }
        }
        for id in dead {
            assert!(q.cancel(id));
        }
        assert_eq!(q.len(), live.len());
        live.sort(); // (time, insertion order) — ids ascend with i
        let order: Vec<(u32, u32)> =
            std::iter::from_fn(|| q.pop().map(|(t, _, p)| (t.as_secs() as u32, p))).collect();
        assert_eq!(order, live);
        assert!(q.is_empty());
    }

    /// Randomised cross-check: the heap queue must agree with the eager
    /// BTree reference under interleaved schedule/cancel/pop/peek.
    #[test]
    fn heap_matches_btree_reference() {
        let mut heap = BinaryHeapQueue::new();
        let mut btree = BTreeQueue::new();
        let mut ids = Vec::new();
        // xorshift64: deterministic, no external RNG needed.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for step in 0..20_000u32 {
            match rnd() % 10 {
                0..=4 => {
                    // Coarse times produce frequent ties (coalescing paths).
                    let t = SimTime::new((rnd() % 64) as f64);
                    let a = heap.schedule(t, step);
                    let b = btree.schedule(t, step);
                    assert_eq!(a, b, "id streams must align");
                    ids.push(a);
                }
                5..=7 => {
                    if !ids.is_empty() {
                        let id = ids[(rnd() as usize) % ids.len()];
                        assert_eq!(heap.cancel(id), btree.cancel(id));
                    }
                }
                8 => {
                    assert_eq!(heap.peek_time(), btree.peek_time());
                }
                _ => {
                    assert_eq!(heap.pop(), btree.pop());
                }
            }
            assert_eq!(heap.len(), btree.len());
        }
        loop {
            let (a, b) = (heap.pop(), btree.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
