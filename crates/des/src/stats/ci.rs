//! Student-t confidence intervals and the sequential stopping rule used by
//! the experiment runner (95 % CI, ≤ 2.5 % relative half-width, per §4.3 of
//! the paper).

use super::welford::Welford;
use serde::{Deserialize, Serialize};

/// Two-sided Student-t critical value `t_{1-alpha/2, df}`.
///
/// Computed from the inverse of the regularised incomplete beta function via
/// Newton iteration on the CDF, verified against the CDF, with a bracketed
/// bisection fallback for the cases Newton mishandles (the heavy tails at
/// df ≤ 2 under extreme `alpha`, where the heuristic `x *= 2` start can
/// land in a region of vanishing density and stall or overshoot).
/// Accurate to ~1e-8, far beyond what CI reporting needs.
pub fn t_critical(df: u64, alpha: f64) -> f64 {
    assert!(df >= 1, "degrees of freedom must be >= 1");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    let p = 1.0 - alpha / 2.0;
    // Start from the normal quantile; t is close for large df.
    let mut x = normal_quantile(p);
    if df <= 2 {
        x *= 2.0; // heavy tails need a further start
    }
    for _ in 0..60 {
        let f = t_cdf(x, df) - p;
        let fp = t_pdf(x, df);
        if fp.abs() < 1e-300 {
            break;
        }
        let step = f / fp;
        x -= step;
        if step.abs() < 1e-12 * (1.0 + x.abs()) {
            break;
        }
    }
    // Trust, but verify: Newton's answer must reproduce the target
    // probability. A non-finite iterate, a negative quantile (p ≥ 0.5 ⇒
    // t ≥ 0) or a stale residual all fall back to bisection.
    if !(x.is_finite() && x >= 0.0) || (t_cdf(x, df) - p).abs() > 1e-8 {
        x = t_quantile_bisect(p, df);
    }
    x
}

/// Monotone bisection for the upper-tail t quantile (`p >= 0.5`): brackets
/// the root by doubling, then halves the interval to convergence. Slower
/// than Newton but unconditionally convergent — the CDF is monotone.
fn t_quantile_bisect(p: f64, df: u64) -> f64 {
    debug_assert!((0.5..1.0).contains(&p));
    let mut lo = 0.0f64; // t_cdf(0) = 0.5 <= p
    let mut hi = 1.0f64;
    while t_cdf(hi, df) < p {
        lo = hi;
        hi *= 2.0;
        if hi > 1e300 {
            break; // p so close to 1 the quantile exceeds representable range
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-12 * (1.0 + lo.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal quantile (Acklam's rational approximation, |err| < 1.2e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Student-t density with `df` degrees of freedom.
fn t_pdf(x: f64, df: u64) -> f64 {
    let v = df as f64;
    let ln_c = crate::dist::ln_gamma((v + 1.0) / 2.0)
        - crate::dist::ln_gamma(v / 2.0)
        - 0.5 * (v * std::f64::consts::PI).ln();
    (ln_c - (v + 1.0) / 2.0 * (1.0 + x * x / v).ln()).exp()
}

/// Student-t CDF via the regularised incomplete beta function.
fn t_cdf(x: f64, df: u64) -> f64 {
    let v = df as f64;
    let ib = inc_beta(v / 2.0, 0.5, v / (v + x * x));
    if x >= 0.0 {
        1.0 - 0.5 * ib
    } else {
        0.5 * ib
    }
}

/// Regularised incomplete beta I_x(a, b), continued-fraction form
/// (Numerical Recipes `betacf`).
fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front =
        crate::dist::ln_gamma(a + b) - crate::dist::ln_gamma(a) - crate::dist::ln_gamma(b)
            + a * x.ln()
            + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// True when `b` is false — the `skip_serializing_if` predicate that keeps
/// the `degenerate` flag out of healthy intervals' JSON.
fn is_false(b: &bool) -> bool {
    !*b
}

/// A mean estimate with its confidence interval.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval at the requested level.
    pub half_width: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
    /// Number of observations behind the estimate.
    pub n: u64,
    /// True when the interval was built from fewer than two observations:
    /// the raw half-width is infinite (reports clamp it to `0.0`), so a
    /// `0.0` here reflects *missing data*, not a genuinely tight estimate.
    /// Serialised only when set, keeping healthy intervals' JSON unchanged.
    #[serde(default, skip_serializing_if = "is_false")]
    pub degenerate: bool,
}

impl ConfidenceInterval {
    /// Builds the interval for the accumulator at `level` (e.g. 0.95).
    /// With fewer than two observations the half-width is infinite and the
    /// interval is flagged [`degenerate`](Self::degenerate).
    pub fn from_welford(w: &Welford, level: f64) -> Self {
        let n = w.count();
        let half_width = if n < 2 {
            f64::INFINITY
        } else {
            t_critical(n - 1, 1.0 - level) * w.std_err()
        };
        ConfidenceInterval {
            mean: w.mean(),
            half_width,
            level,
            n,
            degenerate: n < 2,
        }
    }

    /// Half-width relative to the mean (infinite when the mean is 0).
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            if self.half_width == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width / self.mean.abs()
        }
    }

    /// Interval bounds `(lo, hi)`.
    pub fn bounds(&self) -> (f64, f64) {
        (self.mean - self.half_width, self.mean + self.half_width)
    }
}

/// Sequential stopping rule: keep adding replications until the CI is tight.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StoppingRule {
    /// Confidence level (paper: 0.95).
    pub level: f64,
    /// Target relative half-width (paper: 0.025).
    pub max_relative_error: f64,
    /// Never stop before this many replications.
    pub min_replications: u64,
    /// Give up (and report the achieved precision) after this many.
    pub max_replications: u64,
}

impl Default for StoppingRule {
    fn default() -> Self {
        StoppingRule {
            level: 0.95,
            max_relative_error: 0.025,
            min_replications: 5,
            max_replications: 30,
        }
    }
}

impl StoppingRule {
    /// Returns `true` when enough replications have been accumulated.
    pub fn satisfied(&self, w: &Welford) -> bool {
        if w.count() < self.min_replications {
            return false;
        }
        if w.count() >= self.max_replications {
            return true;
        }
        ConfidenceInterval::from_welford(w, self.level).relative_error() <= self.max_relative_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_matches_tables() {
        // Classic table values for alpha = 0.05 (two-sided).
        let cases = [
            (1, 12.706),
            (2, 4.303),
            (5, 2.571),
            (10, 2.228),
            (29, 2.045),
            (100, 1.984),
        ];
        for (df, expected) in cases {
            let got = t_critical(df, 0.05);
            assert!(
                (got - expected).abs() < 2e-3,
                "df={df}: got {got}, want {expected}"
            );
        }
    }

    #[test]
    fn t_converges_to_normal() {
        let t = t_critical(10_000, 0.05);
        assert!((t - 1.96).abs() < 5e-3, "got {t}");
    }

    #[test]
    fn t_low_df_matches_closed_forms() {
        // df = 1 (Cauchy): quantile = tan(pi * (p - 1/2)).
        // df = 2: quantile = (2p - 1) * sqrt(2 / (1 - (2p - 1)^2)).
        // These are exactly the heavy-tail cases where the Newton start is
        // heuristic; pin them across moderate and extreme alphas so the
        // bisection fallback is exercised, not just the happy path.
        for alpha in [0.2, 0.05, 0.01, 1e-4, 1e-6, 1e-8] {
            let p = 1.0 - alpha / 2.0;
            let want1 = (std::f64::consts::PI * (p - 0.5)).tan();
            let got1 = t_critical(1, alpha);
            assert!(
                (got1 - want1).abs() / want1 < 1e-6,
                "df=1 alpha={alpha}: got {got1}, want {want1}"
            );
            let u = 2.0 * p - 1.0;
            let want2 = u * (2.0 / (1.0 - u * u)).sqrt();
            let got2 = t_critical(2, alpha);
            assert!(
                (got2 - want2).abs() / want2 < 1e-6,
                "df=2 alpha={alpha}: got {got2}, want {want2}"
            );
        }
    }

    #[test]
    fn t_bisect_agrees_with_newton_everywhere() {
        // The fallback must agree with the (verified) Newton answer over
        // the whole table range, so switching paths can never shift a CI.
        for df in [1, 2, 3, 5, 10, 29, 100] {
            for alpha in [0.2, 0.05, 0.01] {
                let p = 1.0 - alpha / 2.0;
                let newton = t_critical(df, alpha);
                let bisect = t_quantile_bisect(p, df);
                assert!(
                    (newton - bisect).abs() < 1e-7 * (1.0 + newton.abs()),
                    "df={df} alpha={alpha}: newton {newton} vs bisect {bisect}"
                );
            }
        }
    }

    #[test]
    fn normal_quantile_symmetry() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.975] {
            let q = normal_quantile(p);
            let r = normal_quantile(1.0 - p);
            assert!((q + r).abs() < 1e-7, "p={p}: {q} vs {r}");
        }
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
    }

    #[test]
    fn ci_from_samples() {
        // 10 observations with known mean/sd.
        let xs = [10.0, 12.0, 9.0, 11.0, 10.5, 9.5, 10.2, 11.8, 10.0, 10.0];
        let w: Welford = xs.iter().copied().collect();
        let ci = ConfidenceInterval::from_welford(&w, 0.95);
        assert_eq!(ci.n, 10);
        assert!((ci.mean - 10.4).abs() < 1e-9);
        // hand-computed: var = 8.18/9, se ≈ 0.30148, t(9) ≈ 2.2622 ⇒ hw ≈ 0.68200
        assert!(
            (ci.half_width - 0.68200).abs() < 2e-3,
            "hw={}",
            ci.half_width
        );
        let (lo, hi) = ci.bounds();
        assert!(lo < 10.4 && hi > 10.4);
    }

    #[test]
    fn ci_degenerate_cases() {
        let w = Welford::new();
        let ci = ConfidenceInterval::from_welford(&w, 0.95);
        assert!(ci.half_width.is_infinite());
        assert!(ci.degenerate, "empty accumulator must be flagged");
        let mut w = Welford::new();
        w.push(5.0);
        let ci = ConfidenceInterval::from_welford(&w, 0.95);
        assert!(ci.half_width.is_infinite());
        assert!(ci.degenerate, "n = 1 must be flagged");
        w.push(5.0);
        let ci = ConfidenceInterval::from_welford(&w, 0.95);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.relative_error(), 0.0);
        assert!(
            !ci.degenerate,
            "zero variance over n >= 2 is genuinely tight, not degenerate"
        );
    }

    #[test]
    fn degenerate_flag_serialises_only_when_set() {
        // Healthy interval: the flag stays off the wire, so pre-existing
        // JSON consumers (and byte-identical goldens) see no change.
        let xs = [1.0, 2.0, 3.0];
        let w: Welford = xs.iter().copied().collect();
        let healthy = ConfidenceInterval::from_welford(&w, 0.95);
        let json = serde_json::to_string(&healthy).unwrap();
        assert!(!json.contains("degenerate"), "{json}");
        let back: ConfidenceInterval = serde_json::from_str(&json).unwrap();
        assert!(!back.degenerate);
        // Degenerate interval: the flag rides along and round-trips.
        let mut one = Welford::new();
        one.push(5.0);
        let mut ci = ConfidenceInterval::from_welford(&one, 0.95);
        ci.half_width = 0.0; // what reportable_ci does downstream
        let json = serde_json::to_string(&ci).unwrap();
        assert!(json.contains("\"degenerate\":true"), "{json}");
        let back: ConfidenceInterval = serde_json::from_str(&json).unwrap();
        assert!(back.degenerate && back.n == 1 && back.half_width == 0.0);
    }

    #[test]
    fn stopping_rule_behaviour() {
        let rule = StoppingRule::default();
        // Identical observations: stops exactly at min_replications.
        let mut w = Welford::new();
        for i in 0..10 {
            w.push(100.0);
            let expect = (i + 1) >= 5;
            assert_eq!(rule.satisfied(&w), expect, "after {} obs", i + 1);
        }
        // Wildly noisy observations: runs to max_replications.
        let mut w = Welford::new();
        let mut x = 1.0;
        for _ in 0..30 {
            w.push(x);
            x *= -1.9;
        }
        assert!(rule.satisfied(&w), "must give up at max_replications");
        let mut w2 = Welford::new();
        w2.push(1.0);
        w2.push(1000.0);
        w2.push(-500.0);
        w2.push(2000.0);
        w2.push(-100.0);
        w2.push(4000.0);
        assert!(!rule.satisfied(&w2), "noisy short run must continue");
    }
}
