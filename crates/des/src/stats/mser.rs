//! MSER truncation: automatic initial-transient (warm-up) detection.
//!
//! The MSER-k rule (White, 1997) batches the output series into means of
//! `k` observations and chooses the truncation point that minimises the
//! standard error of the remaining data — the standard knowledge-free
//! answer to "how many bags should `warmup_bags` discard?".

/// Result of an MSER scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MserResult {
    /// Number of *raw observations* to discard.
    pub truncate: usize,
    /// The minimised standard-error statistic at that truncation.
    pub statistic: f64,
    /// Mean of the retained observations.
    pub truncated_mean: f64,
}

/// MSER-k: returns the truncation point (in raw observations) minimising
/// the MSER statistic over batch means of size `k`.
///
/// Truncations beyond half the series are not considered (the standard
/// guard against the statistic's instability on short tails). Returns
/// `None` when fewer than `2k` observations are supplied.
pub fn mser(xs: &[f64], k: usize) -> Option<MserResult> {
    assert!(k >= 1, "batch size must be at least 1");
    let n_batches = xs.len() / k;
    if n_batches < 2 {
        return None;
    }
    let batch_means: Vec<f64> = (0..n_batches)
        .map(|b| xs[b * k..(b + 1) * k].iter().sum::<f64>() / k as f64)
        .collect();
    let mut best: Option<(usize, f64)> = None;
    // Candidate truncations: drop the first d batches, d ≤ half.
    for d in 0..=(n_batches / 2) {
        let tail = &batch_means[d..];
        let m = tail.len() as f64;
        let mean = tail.iter().sum::<f64>() / m;
        let var = tail.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / m;
        // MSER statistic: variance of the mean of the retained batches.
        let stat = var / m;
        if best.map(|(_, b)| stat < b).unwrap_or(true) {
            best = Some((d, stat));
        }
    }
    let (d, statistic) = best.expect("at least one candidate");
    let truncate = d * k;
    let tail = &xs[truncate..];
    let truncated_mean = tail.iter().sum::<f64>() / tail.len() as f64;
    Some(MserResult {
        truncate,
        statistic,
        truncated_mean,
    })
}

/// MSER-5, the conventional parameterisation.
pub fn mser5(xs: &[f64]) -> Option<MserResult> {
    mser(xs, 5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// A series with an obvious transient: starts high, settles to ~10.
    fn transient_series(n: usize, transient: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let noise: f64 = rng.gen_range(-1.0..1.0);
                if i < transient {
                    100.0 - 90.0 * (i as f64 / transient as f64) + noise
                } else {
                    10.0 + noise
                }
            })
            .collect()
    }

    #[test]
    fn detects_transient() {
        let xs = transient_series(1000, 100, 1);
        let r = mser5(&xs).expect("enough data");
        assert!(
            (50..=200).contains(&r.truncate),
            "should truncate near the 100-obs transient, got {}",
            r.truncate
        );
        assert!(
            (r.truncated_mean - 10.0).abs() < 1.0,
            "mean {}",
            r.truncated_mean
        );
    }

    #[test]
    fn stationary_series_keeps_everything_or_little() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let xs: Vec<f64> = (0..1000).map(|_| 5.0 + rng.gen_range(-0.5..0.5)).collect();
        let r = mser5(&xs).expect("enough data");
        assert!(
            r.truncate <= 300,
            "stationary data needs no big truncation, got {}",
            r.truncate
        );
        assert!((r.truncated_mean - 5.0).abs() < 0.2);
    }

    #[test]
    fn truncation_capped_at_half() {
        // A series that keeps trending: the rule must not throw away more
        // than half.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = mser5(&xs).expect("enough data");
        assert!(r.truncate <= 100);
    }

    #[test]
    fn short_series_returns_none() {
        assert!(mser5(&[1.0; 9]).is_none());
        assert!(mser5(&[1.0; 10]).is_some());
        assert!(mser(&[], 5).is_none());
    }

    #[test]
    fn batch_size_one_works() {
        let xs = transient_series(400, 50, 3);
        let r = mser(&xs, 1).expect("enough data");
        assert!((30..=120).contains(&r.truncate), "got {}", r.truncate);
    }
}
