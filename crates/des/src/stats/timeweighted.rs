//! Time-weighted statistics for piecewise-constant signals (queue lengths,
//! busy-machine counts, utilization).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Integrates a piecewise-constant signal over simulated time and reports
/// its time-average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at `start` with initial `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            value,
            integral: 0.0,
            max: value,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics (debug) if `now` precedes the previous update.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(
            now >= self.last_change,
            "time-weighted updates must be monotone"
        );
        self.integral += self.value * now.since(self.last_change);
        self.last_change = now;
        self.value = value;
        self.max = self.max.max(value);
    }

    /// Adds `delta` to the signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current signal value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value ever observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Integral of the signal from `start` to `now`.
    pub fn integral_to(&self, now: SimTime) -> f64 {
        self.integral + self.value * now.since(self.last_change)
    }

    /// Time-average of the signal from `start` to `now` (0 over an empty
    /// interval).
    pub fn time_average(&self, now: SimTime) -> f64 {
        let span = now.since(self.start);
        if span <= 0.0 {
            0.0
        } else {
            self.integral_to(now) / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let tw = TimeWeighted::new(SimTime::ZERO, 3.0);
        assert_eq!(tw.time_average(SimTime::new(10.0)), 3.0);
        assert_eq!(tw.integral_to(SimTime::new(10.0)), 30.0);
    }

    #[test]
    fn step_signal() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::new(2.0), 4.0); // 0 for [0,2), 4 for [2,6)
        assert_eq!(tw.integral_to(SimTime::new(6.0)), 16.0);
        assert_eq!(tw.time_average(SimTime::new(6.0)), 16.0 / 6.0);
        assert_eq!(tw.max(), 4.0);
        assert_eq!(tw.current(), 4.0);
    }

    #[test]
    fn add_tracks_queue_length() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::new(1.0), 1.0); // length 1 from t=1
        tw.add(SimTime::new(3.0), 1.0); // length 2 from t=3
        tw.add(SimTime::new(4.0), -2.0); // empty from t=4
                                         // integral = 0*1 + 1*2 + 2*1 + 0*6 = 4 over [0,10]
        assert_eq!(tw.integral_to(SimTime::new(10.0)), 4.0);
        assert!((tw.time_average(SimTime::new(10.0)) - 0.4).abs() < 1e-12);
        assert_eq!(tw.max(), 2.0);
    }

    #[test]
    fn empty_interval_average_is_zero() {
        let tw = TimeWeighted::new(SimTime::new(5.0), 7.0);
        assert_eq!(tw.time_average(SimTime::new(5.0)), 0.0);
    }

    #[test]
    fn nonzero_start_time() {
        let mut tw = TimeWeighted::new(SimTime::new(100.0), 2.0);
        tw.set(SimTime::new(110.0), 0.0);
        assert_eq!(tw.integral_to(SimTime::new(120.0)), 20.0);
        assert_eq!(tw.time_average(SimTime::new(120.0)), 1.0);
    }
}
