//! Autocorrelation analysis for simulation output.
//!
//! Turnaround observations from one run are serially correlated (bags
//! overlap in the system), which biases naive variance estimates. This
//! module estimates the autocorrelation function, the effective sample
//! size, and a batch size large enough for batch means to be treated as
//! independent.

/// Sample autocorrelation at lags `0..=max_lag` (lag 0 is always 1).
///
/// Returns an empty vector when fewer than two observations are supplied.
pub fn autocorrelation(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    if n < 2 {
        return Vec::new();
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let c0: f64 = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    if c0 == 0.0 {
        // A constant series: define ρ₀ = 1, all other lags 0.
        let mut out = vec![0.0; max_lag.min(n - 1) + 1];
        out[0] = 1.0;
        return out;
    }
    (0..=max_lag.min(n - 1))
        .map(|k| {
            let ck: f64 = xs[..n - k]
                .iter()
                .zip(&xs[k..])
                .map(|(a, b)| (a - mean) * (b - mean))
                .sum::<f64>()
                / n as f64;
            ck / c0
        })
        .collect()
}

/// Effective sample size `n / (1 + 2 Σ ρ_k)`, truncating the sum at the
/// first non-positive autocorrelation (Geyer's initial positive sequence,
/// simplified). At least 1.
pub fn effective_sample_size(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return n as f64;
    }
    let rho = autocorrelation(xs, n / 2);
    let mut s = 0.0;
    for &r in rho.iter().skip(1) {
        if r <= 0.0 {
            break;
        }
        s += r;
    }
    (n as f64 / (1.0 + 2.0 * s)).max(1.0)
}

/// Suggests a batch size such that batch means are approximately
/// uncorrelated: the first lag where the autocorrelation drops below
/// `cutoff` (default recommendation: 0.05), doubled for safety margin.
pub fn suggest_batch_size(xs: &[f64], cutoff: f64) -> usize {
    let n = xs.len();
    if n < 4 {
        return 1;
    }
    let rho = autocorrelation(xs, n / 2);
    let decorrelation_lag = rho
        .iter()
        .enumerate()
        .skip(1)
        .find(|(_, &r)| r.abs() < cutoff)
        .map(|(k, _)| k)
        .unwrap_or(n / 2);
    (2 * decorrelation_lag).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn ar1(phi: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                let e: f64 = rng.gen::<f64>() - 0.5;
                x = phi * x + e;
                x
            })
            .collect()
    }

    #[test]
    fn lag_zero_is_one() {
        let xs = ar1(0.5, 500, 1);
        let rho = autocorrelation(&xs, 10);
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_tiny_autocorrelation() {
        let xs = ar1(0.0, 20_000, 2);
        let rho = autocorrelation(&xs, 5);
        for &r in &rho[1..] {
            assert!(r.abs() < 0.05, "iid lag correlation {r}");
        }
        let ess = effective_sample_size(&xs);
        assert!(ess > 0.8 * xs.len() as f64, "ESS {ess} of {}", xs.len());
    }

    #[test]
    fn ar1_autocorrelation_matches_theory() {
        // For AR(1), ρ_k = φ^k.
        let phi: f64 = 0.8;
        let xs = ar1(phi, 100_000, 3);
        let rho = autocorrelation(&xs, 3);
        for (k, &r) in rho.iter().enumerate().skip(1) {
            let expected = phi.powi(k as i32);
            assert!((r - expected).abs() < 0.05, "lag {k}: {r} vs {expected}");
        }
    }

    #[test]
    fn correlated_series_shrinks_ess() {
        let xs = ar1(0.9, 20_000, 4);
        let ess = effective_sample_size(&xs);
        // Theory: ESS/n ≈ (1-φ)/(1+φ) ≈ 0.053.
        let ratio = ess / xs.len() as f64;
        assert!(ratio < 0.15, "ESS ratio {ratio}");
        assert!(ratio > 0.01, "ESS ratio {ratio}");
    }

    #[test]
    fn batch_size_grows_with_correlation() {
        let weak = suggest_batch_size(&ar1(0.2, 10_000, 5), 0.05);
        let strong = suggest_batch_size(&ar1(0.95, 10_000, 5), 0.05);
        assert!(strong > weak, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(autocorrelation(&[], 5).is_empty());
        assert!(autocorrelation(&[1.0], 5).is_empty());
        assert_eq!(effective_sample_size(&[1.0]), 1.0);
        assert_eq!(suggest_batch_size(&[1.0, 2.0], 0.05), 1);
        // Constant series must not divide by zero.
        let rho = autocorrelation(&[3.0; 10], 4);
        assert_eq!(rho[0], 1.0);
        assert!(rho[1..].iter().all(|&r| r == 0.0));
    }
}
