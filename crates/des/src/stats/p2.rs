//! P² streaming quantile estimation (Jain & Chlamtac, 1985).
//!
//! Estimates a single quantile of a stream in O(1) memory — five markers
//! adjusted with piecewise-parabolic interpolation. Exactly what a long
//! saturation run needs for "p95 turnaround" without storing every bag.

/// Streaming estimator for the `q`-quantile.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (the estimates).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, buffered until initialisation.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// Number of observations consumed.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.warmup.len() < 5 {
            self.warmup.push(x);
            if self.warmup.len() == 5 {
                self.warmup.sort_by(|a, b| a.total_cmp(b));
                for (h, w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = *w;
                }
            }
            return;
        }

        // 1. Find the cell k containing x, clamping the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            // heights[0] <= x < heights[4]
            (0..4)
                .find(|&i| x < self.heights[i + 1])
                .expect("x is within the marker range")
        };

        // 2. Shift positions above the cell.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust interior markers towards their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let parabolic = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < parabolic && parabolic < self.heights[i + 1] {
                        parabolic
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (`None` before five observations).
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.warmup.len() < 5 {
            // Exact small-sample quantile from the buffer.
            let mut s = self.warmup.clone();
            s.sort_by(|a, b| a.total_cmp(b));
            let idx = ((self.q * s.len() as f64).ceil() as usize).clamp(1, s.len()) - 1;
            return Some(s[idx]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(xs: &mut [f64], q: f64) -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[((q * xs.len() as f64) as usize).min(xs.len() - 1)]
    }

    #[test]
    fn median_of_uniform_stream() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut p2 = P2Quantile::new(0.5);
        let mut all = Vec::new();
        for _ in 0..50_000 {
            let x: f64 = rng.gen_range(0.0..100.0);
            p2.push(x);
            all.push(x);
        }
        let est = p2.estimate().unwrap();
        let exact = exact_quantile(&mut all, 0.5);
        assert!((est - exact).abs() < 1.0, "P² {est} vs exact {exact}");
    }

    #[test]
    fn p95_of_skewed_stream() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut p2 = P2Quantile::new(0.95);
        let mut all = Vec::new();
        for _ in 0..100_000 {
            // Exponential: heavy-ish right tail.
            let u: f64 = rng.gen();
            let x = -(1.0 - u).ln() * 50.0;
            p2.push(x);
            all.push(x);
        }
        let est = p2.estimate().unwrap();
        let exact = exact_quantile(&mut all, 0.95);
        let rel = (est - exact).abs() / exact;
        assert!(
            rel < 0.05,
            "P² {est} vs exact {exact} ({:.1}% off)",
            rel * 100.0
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert_eq!(p2.estimate(), None);
        p2.push(10.0);
        assert_eq!(p2.estimate(), Some(10.0));
        p2.push(20.0);
        p2.push(30.0);
        // Median of {10,20,30} = 20.
        assert_eq!(p2.estimate(), Some(20.0));
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn monotone_stream() {
        let mut p2 = P2Quantile::new(0.9);
        for i in 0..10_000 {
            p2.push(i as f64);
        }
        let est = p2.estimate().unwrap();
        assert!((est - 9_000.0).abs() < 200.0, "est {est}");
    }

    #[test]
    #[should_panic]
    fn rejects_invalid_quantile() {
        let _ = P2Quantile::new(1.0);
    }
}
