//! Fixed-width histogram with overflow bins and quantile estimation.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with `bins` equal-width buckets plus
/// under/overflow counters. Quantiles are estimated by linear interpolation
/// within a bucket, which is plenty for reporting turnaround distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Width of one bucket.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / self.bin_width()) as usize;
            let idx = idx.min(self.counts.len() - 1); // float-edge guard
            self.counts[idx] += 1;
        }
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count outside the range, below and above.
    pub fn outliers(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the `q`-quantile (0 < q < 1) by interpolating within the
    /// bucket containing the target rank. Returns `None` when empty; clamps
    /// to the range bounds when the rank falls in an overflow bin.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = q * self.total as f64;
        let mut cum = self.underflow as f64;
        if target <= cum {
            return Some(self.lo);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            let next = cum + c as f64;
            if target <= next && c > 0 {
                let frac = (target - cum) / c as f64;
                return Some(self.lo + (i as f64 + frac) * self.bin_width());
            }
            cum = next;
        }
        Some(self.hi)
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "histogram geometry mismatch");
        assert_eq!(self.hi, other.hi, "histogram geometry mismatch");
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "histogram geometry mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.99);
        h.record(5.0);
        h.record(-1.0);
        h.record(10.0);
        assert_eq!(h.total(), 5);
        assert_eq!(h.outliers(), (1, 1));
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn quantiles_uniform_data() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() < 1.5, "median={median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() < 1.5, "p90={p90}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantile_overflow_clamps() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for _ in 0..10 {
            h.record(5.0);
        }
        assert_eq!(h.quantile(0.5), Some(1.0));
        let mut h = Histogram::new(0.0, 1.0, 4);
        for _ in 0..10 {
            h.record(-5.0);
        }
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(1.0);
        b.record(9.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts()[0], 2);
        assert_eq!(a.counts()[4], 1);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_geometry() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 20.0, 5);
        a.merge(&b);
    }
}
