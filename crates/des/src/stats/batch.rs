//! Batch-means estimation for steady-state output analysis.
//!
//! A single long run produces autocorrelated observations; grouping them
//! into batches and treating batch means as i.i.d. recovers a usable
//! variance estimate. Used by the experiment runner's single-run mode and
//! by tests that validate the replication-based CI against it.

use super::ci::ConfidenceInterval;
use super::welford::Welford;
use serde::{Deserialize, Serialize};

/// Accumulates observations into fixed-size batches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchMeans {
    batch_size: usize,
    current: Welford,
    batches: Welford,
    warmup_remaining: usize,
}

impl BatchMeans {
    /// Creates an accumulator with `batch_size` observations per batch,
    /// discarding the first `warmup` observations (initial-transient
    /// deletion).
    pub fn new(batch_size: usize, warmup: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
            warmup_remaining: warmup,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            return;
        }
        self.current.push(x);
        if self.current.count() as usize >= self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of complete batches.
    pub fn batch_count(&self) -> u64 {
        self.batches.count()
    }

    /// Mean over complete batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Confidence interval over complete batch means.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        ConfidenceInterval::from_welford(&self.batches, level)
    }

    /// Accumulator over the batch means (for merging or inspection).
    pub fn batches(&self) -> &Welford {
        &self.batches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_partition_stream() {
        let mut bm = BatchMeans::new(10, 0);
        for i in 0..100 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batch_count(), 10);
        // Batch means are 4.5, 14.5, ..., 94.5 → overall mean 49.5.
        assert!((bm.mean() - 49.5).abs() < 1e-12);
    }

    #[test]
    fn warmup_discards_prefix() {
        let mut bm = BatchMeans::new(5, 10);
        for _ in 0..10 {
            bm.push(1_000_000.0); // transient junk
        }
        for _ in 0..25 {
            bm.push(2.0);
        }
        assert_eq!(bm.batch_count(), 5);
        assert_eq!(bm.mean(), 2.0);
    }

    #[test]
    fn incomplete_batch_excluded() {
        let mut bm = BatchMeans::new(10, 0);
        for _ in 0..19 {
            bm.push(1.0);
        }
        assert_eq!(bm.batch_count(), 1);
    }

    #[test]
    fn ci_shrinks_with_more_batches() {
        let wobble = |i: usize| 10.0 + if i.is_multiple_of(2) { 1.0 } else { -1.0 };
        let mut small = BatchMeans::new(4, 0);
        for i in 0..40 {
            small.push(wobble(i));
        }
        let mut large = BatchMeans::new(4, 0);
        for i in 0..400 {
            large.push(wobble(i));
        }
        let hw_small = small.confidence_interval(0.95).half_width;
        let hw_large = large.confidence_interval(0.95).half_width;
        assert!(hw_large <= hw_small);
    }
}
