//! Bootstrap confidence intervals — a distribution-free alternative to the
//! Student-t interval for skewed metrics (turnaround distributions on
//! saturating systems are heavily right-skewed, where t intervals
//! under-cover).

use super::ci::ConfidenceInterval;
use rand::Rng;

/// Percentile-bootstrap CI of the mean: resample `samples` with
/// replacement `resamples` times and take the empirical `level` interval
/// of the resampled means.
///
/// Returns a degenerate interval (infinite half-width) for fewer than two
/// observations.
pub fn bootstrap_mean_ci<R: Rng + ?Sized>(
    samples: &[f64],
    level: f64,
    resamples: usize,
    rng: &mut R,
) -> ConfidenceInterval {
    assert!(
        (0.0..1.0).contains(&level) && level > 0.0,
        "level must be in (0,1)"
    );
    assert!(resamples >= 100, "need at least 100 resamples");
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n.max(1) as f64;
    if n < 2 {
        return ConfidenceInterval {
            mean,
            half_width: f64::INFINITY,
            level,
            n: n as u64,
            degenerate: true,
        };
    }
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut s = 0.0;
        for _ in 0..n {
            s += samples[rng.gen_range(0..n)];
        }
        means.push(s / n as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let alpha = 1.0 - level;
    let lo_idx = ((alpha / 2.0) * resamples as f64) as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64) as usize).min(resamples - 1);
    let (lo, hi) = (means[lo_idx], means[hi_idx]);
    // Report as a symmetric-looking interval around the point estimate by
    // taking the larger distance (conservative for skewed data).
    let half_width = (mean - lo).max(hi - mean);
    ConfidenceInterval {
        mean,
        half_width,
        level,
        n: n as u64,
        degenerate: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_known_mean_for_normal_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let data: Vec<f64> = (0..200)
            .map(|_| {
                // Sum of uniforms ≈ normal around 5.0.
                (0..12).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() - 6.0 + 5.0
            })
            .collect();
        let ci = bootstrap_mean_ci(&data, 0.95, 1000, &mut rng);
        let (lo, hi) = ci.bounds();
        assert!(lo < 5.0 && 5.0 < hi, "CI [{lo}, {hi}] must cover 5.0");
        assert!(ci.half_width < 0.5);
    }

    #[test]
    fn comparable_to_t_interval_for_symmetric_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let data: Vec<f64> = (0..100).map(|_| rng.gen_range(0.0..10.0)).collect();
        let boot = bootstrap_mean_ci(&data, 0.95, 2000, &mut rng);
        let w: super::super::Welford = data.iter().copied().collect();
        let t = ConfidenceInterval::from_welford(&w, 0.95);
        let ratio = boot.half_width / t.half_width;
        assert!(
            (0.7..1.4).contains(&ratio),
            "bootstrap/t width ratio {ratio}"
        );
    }

    #[test]
    fn wider_for_skewed_than_symmetric_tail() {
        // Exponential-ish data: the upper distance should exceed the lower,
        // and the conservative half-width picks it up.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..150)
            .map(|_| -(1.0 - rng.gen_range(0.0..1.0f64)).ln() * 100.0)
            .collect();
        let ci = bootstrap_mean_ci(&data, 0.95, 2000, &mut rng);
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!((ci.mean - mean).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ci = bootstrap_mean_ci(&[], 0.95, 100, &mut rng);
        assert!(ci.half_width.is_infinite());
        let ci = bootstrap_mean_ci(&[7.0], 0.95, 100, &mut rng);
        assert!(ci.half_width.is_infinite());
        assert_eq!(ci.mean, 7.0);
        let ci = bootstrap_mean_ci(&[3.0, 3.0, 3.0], 0.95, 100, &mut rng);
        assert_eq!(ci.half_width, 0.0);
    }
}
