//! Output-analysis toolkit: streaming moments, confidence intervals,
//! time-weighted signals, histograms and batch means.

mod autocorr;
mod batch;
mod bootstrap;
mod ci;
mod histogram;
mod mser;
mod p2;
mod timeweighted;
mod welford;

pub use autocorr::{autocorrelation, effective_sample_size, suggest_batch_size};
pub use batch::BatchMeans;
pub use bootstrap::bootstrap_mean_ci;
pub use ci::{normal_quantile, t_critical, ConfidenceInterval, StoppingRule};
pub use histogram::Histogram;
pub use mser::{mser, mser5, MserResult};
pub use p2::P2Quantile;
pub use timeweighted::TimeWeighted;
pub use welford::Welford;
