//! Numerically stable running mean/variance (Welford's algorithm).

use serde::{de, Deserialize, Serialize, Value};

/// Streaming accumulator for count, mean, variance, min and max.
///
/// Serialisation is **journal-stable**: JSON cannot carry the empty
/// accumulator's `±inf` min/max sentinels (they degrade to `null`), so an
/// empty accumulator is written with canonical zero min/max and the
/// sentinels are restored on read. Any finite accumulator round-trips
/// bit-for-bit (the JSON writer uses shortest round-trip float formatting),
/// which the crash-safe replication journal relies on.
#[derive(Debug, Clone, Copy)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Welford {
    /// Same as [`Welford::new`]: the empty accumulator, with its `±inf`
    /// min/max sentinels (a derived all-zero default would report a false
    /// min/max of 0 after the first merge skipped it).
    fn default() -> Self {
        Welford::new()
    }
}

impl Serialize for Welford {
    fn serialize_value(&self) -> Value {
        // n == 0 ⇒ min/max are the ±inf sentinels; write zeros instead so
        // the record survives JSON (which has no infinities).
        let (min, max) = if self.n == 0 {
            (0.0, 0.0)
        } else {
            (self.min, self.max)
        };
        Value::Object(vec![
            ("n".to_string(), Value::U64(self.n)),
            ("mean".to_string(), Value::F64(self.mean)),
            ("m2".to_string(), Value::F64(self.m2)),
            ("min".to_string(), Value::F64(min)),
            ("max".to_string(), Value::F64(max)),
        ])
    }
}

impl Deserialize for Welford {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| de::Error::msg("expected Welford object"))?;
        let field = |name: &str| -> Result<&Value, de::Error> {
            obj.iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| de::Error::msg("missing Welford field"))
        };
        let n = u64::deserialize_value(field("n")?)?;
        if n == 0 {
            return Ok(Welford::new());
        }
        let w = Welford {
            n,
            mean: f64::deserialize_value(field("mean")?)?,
            m2: f64::deserialize_value(field("m2")?)?,
            min: f64::deserialize_value(field("min")?)?,
            max: f64::deserialize_value(field("max")?)?,
        };
        if !(w.mean.is_finite() && w.m2.is_finite() && w.min.is_finite() && w.max.is_finite()) {
            return Err(de::Error::msg("non-finite Welford state"));
        }
        Ok(w)
    }
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel formula), enabling
    /// fork/join reductions across worker threads.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl std::iter::FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let w: Welford = xs.iter().copied().collect();
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..37].iter().copied().collect();
        let b: Welford = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut w: Welford = xs.iter().copied().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w.count(), before.count());
        assert_eq!(w.mean(), before.mean());
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trips_bit_for_bit() {
        // The journal replays these through JSON: every bit of the state
        // must survive, including awkward shortest-round-trip floats.
        let w: Welford = [0.1, 1.0 / 3.0, 2.5e-17, 1e18, -7.25]
            .iter()
            .copied()
            .collect();
        let json = serde_json::to_string(&w).unwrap();
        let back: Welford = serde_json::from_str(&json).unwrap();
        assert_eq!(w.count(), back.count());
        assert_eq!(w.mean().to_bits(), back.mean().to_bits());
        assert_eq!(w.variance().to_bits(), back.variance().to_bits());
        assert_eq!(w.min().to_bits(), back.min().to_bits());
        assert_eq!(w.max().to_bits(), back.max().to_bits());
    }

    #[test]
    fn empty_serde_restores_sentinels() {
        // JSON cannot carry ±inf; the empty accumulator must still come
        // back canonical (min +inf / max -inf), not with null-poisoned or
        // zeroed sentinels that a later merge would surface as fake data.
        let json = serde_json::to_string(&Welford::new()).unwrap();
        assert!(!json.contains("null"), "no field degraded to null: {json}");
        let back: Welford = serde_json::from_str(&json).unwrap();
        assert_eq!(back.count(), 0);
        assert_eq!(back.min(), f64::INFINITY);
        assert_eq!(back.max(), f64::NEG_INFINITY);
        let mut merged = back;
        merged.push(5.0);
        assert_eq!(merged.min(), 5.0);
        assert_eq!(merged.max(), 5.0);
    }

    #[test]
    fn default_is_canonical_empty() {
        let d = Welford::default();
        assert_eq!(d.count(), 0);
        assert_eq!(d.min(), f64::INFINITY);
        assert_eq!(d.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn stable_under_large_offset() {
        // Catastrophic cancellation check: variance of {k, k+1, k+2} is 1.
        let k = 1e9;
        let w: Welford = [k, k + 1.0, k + 2.0].iter().copied().collect();
        assert!((w.variance() - 1.0).abs() < 1e-6);
    }
}
