//! Numerically stable running mean/variance (Welford's algorithm).

use serde::{Deserialize, Serialize};

/// Streaming accumulator for count, mean, variance, min and max.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel formula), enabling
    /// fork/join reductions across worker threads.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

impl std::iter::FromIterator<f64> for Welford {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut w = Welford::new();
        for x in iter {
            w.push(x);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_formulas() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let w: Welford = xs.iter().copied().collect();
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert!((w.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        let mut w = Welford::new();
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.std_err(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 5.0).collect();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..37].iter().copied().collect();
        let b: Welford = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut w: Welford = xs.iter().copied().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w.count(), before.count());
        assert_eq!(w.mean(), before.mean());
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.count(), 3);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stable_under_large_offset() {
        // Catastrophic cancellation check: variance of {k, k+1, k+2} is 1.
        let k = 1e9;
        let w: Welford = [k, k + 1.0, k + 2.0].iter().copied().collect();
        assert!((w.variance() - 1.0).abs() < 1e-6);
    }
}
