//! Zero-cost wall-clock profiling primitives.
//!
//! The kernel's hot paths are instrumented with [`stamp`] /
//! [`SpanTimes::record`] pairs. With the `timing` cargo feature disabled
//! (the default), [`Stamp`] is the unit type and both functions are empty
//! `#[inline(always)]` bodies — the instrumentation compiles to nothing,
//! which is what lets the production path promise byte-identical output
//! *and* identical machine code. With `timing` enabled, each pair costs
//! two `Instant::now` reads and updates count / total / max nanoseconds.

/// An opaque start-of-span marker. Unit when profiling is compiled out.
#[cfg(feature = "timing")]
pub type Stamp = std::time::Instant;

/// An opaque start-of-span marker. Unit when profiling is compiled out.
#[cfg(not(feature = "timing"))]
pub type Stamp = ();

/// Marks the start of a span.
#[inline(always)]
#[must_use]
pub fn stamp() -> Stamp {
    #[cfg(feature = "timing")]
    {
        std::time::Instant::now()
    }
}

/// Count / total / max wall-clock nanoseconds of one span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTimes {
    /// Times the span was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

impl SpanTimes {
    /// Closes a span opened with [`stamp`].
    #[cfg(feature = "timing")]
    #[inline(always)]
    pub fn record(&mut self, start: Stamp) {
        let ns = start.elapsed().as_nanos() as u64;
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Closes a span opened with [`stamp`]. A no-op without the `timing`
    /// feature.
    #[cfg(not(feature = "timing"))]
    #[inline(always)]
    pub fn record(&mut self, _start: Stamp) {}

    /// True when nothing was recorded (always true without `timing`).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_or_is_noop() {
        let mut span = SpanTimes::default();
        let t = stamp();
        span.record(t);
        if cfg!(feature = "timing") {
            assert_eq!(span.count, 1);
            assert!(span.max_ns <= span.total_ns);
        } else {
            assert!(span.is_empty());
            assert_eq!(span, SpanTimes::default());
        }
    }
}
