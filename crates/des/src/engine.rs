//! Generic discrete-event simulation driver.
//!
//! The [`Engine`] owns the clock and the pending-event set; domain logic
//! lives in a [`Handler`] that receives events in time order and schedules
//! follow-ups through the [`Scheduler`] facade. This split keeps the hot
//! loop monomorphised and allocation-free while letting the grid simulator
//! stay oblivious to queue internals.

use crate::event::EventId;
use crate::profile::{stamp, SpanTimes};
use crate::queue::{BinaryHeapQueue, PendingEvents};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Operation counts against the pending-event set, maintained by the
/// engine regardless of which queue backend is plugged in.
///
/// These are plain counters (not wall-clock spans), so they are always on:
/// incrementing an integer per queue call is free next to the queue call
/// itself, and the counts are useful for sizing calendar-queue buckets and
/// spotting cancellation-heavy policies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueOps {
    /// Events inserted (priming and in-run scheduling).
    pub scheduled: u64,
    /// Cancellations that hit a still-pending event.
    pub cancelled: u64,
    /// Events popped and handed to the handler (or dropped at the horizon).
    pub popped: u64,
    /// High-water mark of live pending events.
    pub max_pending: u64,
}

/// Scheduling facade handed to the [`Handler`] during event processing.
pub struct Scheduler<'a, E, Q: PendingEvents<E>> {
    now: SimTime,
    queue: &'a mut Q,
    ops: &'a mut QueueOps,
    _marker: std::marker::PhantomData<E>,
}

impl<'a, E, Q: PendingEvents<E>> Scheduler<'a, E, Q> {
    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` seconds from now.
    ///
    /// # Panics
    /// Panics if `delay` is negative (the past is immutable).
    #[inline]
    pub fn schedule_in(&mut self, delay: f64, payload: E) -> EventId {
        assert!(
            delay >= 0.0,
            "cannot schedule an event in the past (delay={delay})"
        );
        let id = self.queue.schedule(self.now + delay, payload);
        self.ops.scheduled += 1;
        self.ops.max_pending = self.ops.max_pending.max(self.queue.len() as u64);
        id
    }

    /// Schedules `payload` at an absolute time `at >= now`.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past (at={at}, now={})",
            self.now
        );
        let id = self.queue.schedule(at, payload);
        self.ops.scheduled += 1;
        self.ops.max_pending = self.ops.max_pending.max(self.queue.len() as u64);
        id
    }

    /// Cancels a pending event; returns `true` if it was still pending.
    #[inline]
    pub fn cancel(&mut self, id: EventId) -> bool {
        let hit = self.queue.cancel(id);
        self.ops.cancelled += u64::from(hit);
        hit
    }

    /// Number of live pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Outcome of handling one event: continue or stop the run early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Stop after this event (e.g. termination condition reached).
    Stop,
}

/// Domain logic driven by the engine.
pub trait Handler<E> {
    /// Handles one event at its firing time. Schedule follow-up events via
    /// `sched`.
    fn handle<Q: PendingEvents<E>>(&mut self, event: E, sched: &mut Scheduler<'_, E, Q>)
        -> Control;
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The pending-event set drained.
    Drained,
    /// The handler requested a stop.
    Stopped,
    /// The event budget was exhausted before draining (see
    /// [`Engine::set_event_limit`]); usually indicates saturation.
    EventLimit,
    /// The time horizon was reached.
    Horizon,
}

/// The simulation engine: clock + pending-event set + run loop.
pub struct Engine<E, Q: PendingEvents<E> = BinaryHeapQueue<E>> {
    now: SimTime,
    queue: Q,
    processed: u64,
    event_limit: u64,
    horizon: SimTime,
    ops: QueueOps,
    pop_span: SpanTimes,
    _marker: std::marker::PhantomData<E>,
}

impl<E> Engine<E, BinaryHeapQueue<E>> {
    /// Creates an engine backed by the binary-heap queue (the default).
    pub fn new() -> Self {
        Self::with_queue(BinaryHeapQueue::new())
    }
}

impl<E> Default for Engine<E, BinaryHeapQueue<E>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, Q: PendingEvents<E>> Engine<E, Q> {
    /// Creates an engine backed by a caller-supplied queue implementation.
    pub fn with_queue(queue: Q) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue,
            processed: 0,
            event_limit: u64::MAX,
            horizon: SimTime::FAR_FUTURE,
            ops: QueueOps::default(),
            pop_span: SpanTimes::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Caps the number of processed events; the run ends with
    /// [`RunOutcome::EventLimit`] when exceeded.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Caps simulated time; events after `horizon` are not processed.
    pub fn set_horizon(&mut self, horizon: SimTime) {
        self.horizon = horizon;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Queue operation counts accumulated so far (see [`QueueOps`]).
    pub fn queue_ops(&self) -> QueueOps {
        self.ops
    }

    /// Wall-clock time spent inside `queue.pop()` during [`Engine::run`].
    /// All zero unless the `timing` feature is enabled.
    pub fn pop_span(&self) -> SpanTimes {
        self.pop_span
    }

    /// Schedules an event before the run starts (or between runs).
    pub fn prime(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(at >= self.now, "cannot prime an event in the past");
        let id = self.queue.schedule(at, payload);
        self.ops.scheduled += 1;
        self.ops.max_pending = self.ops.max_pending.max(self.queue.len() as u64);
        id
    }

    /// Runs the handler until the queue drains, the handler stops the run,
    /// or a budget is exhausted.
    pub fn run<H: Handler<E>>(&mut self, handler: &mut H) -> RunOutcome {
        loop {
            if self.processed >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            #[allow(clippy::let_unit_value)] // unit Stamp without `timing`
            let t = stamp();
            let popped = self.queue.pop();
            self.pop_span.record(t);
            let Some((time, _id, payload)) = popped else {
                return RunOutcome::Drained;
            };
            self.ops.popped += 1;
            debug_assert!(
                time >= self.now,
                "event queue returned an event from the past"
            );
            if time > self.horizon {
                // Leave the clock at the horizon; the event is dropped.
                self.now = self.horizon;
                return RunOutcome::Horizon;
            }
            self.now = time;
            self.processed += 1;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
                ops: &mut self.ops,
                _marker: std::marker::PhantomData,
            };
            if handler.handle(payload, &mut sched) == Control::Stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that models a tiny birth process: each event spawns one
    /// follow-up a fixed delay later, up to a population cap.
    struct Birth {
        spawned: u32,
        cap: u32,
        log: Vec<f64>,
    }

    impl Handler<u32> for Birth {
        fn handle<Q: PendingEvents<u32>>(
            &mut self,
            event: u32,
            sched: &mut Scheduler<'_, u32, Q>,
        ) -> Control {
            self.log.push(sched.now().as_secs());
            if self.spawned < self.cap {
                self.spawned += 1;
                sched.schedule_in(1.5, event + 1);
            }
            Control::Continue
        }
    }

    #[test]
    fn drains_in_time_order() {
        let mut engine = Engine::new();
        engine.prime(SimTime::new(0.0), 0);
        let mut h = Birth {
            spawned: 0,
            cap: 4,
            log: Vec::new(),
        };
        assert_eq!(engine.run(&mut h), RunOutcome::Drained);
        assert_eq!(h.log, vec![0.0, 1.5, 3.0, 4.5, 6.0]);
        assert_eq!(engine.processed(), 5);
        assert_eq!(engine.now().as_secs(), 6.0);
    }

    #[test]
    fn event_limit_reports_saturation() {
        let mut engine = Engine::new();
        engine.set_event_limit(3);
        engine.prime(SimTime::new(0.0), 0);
        let mut h = Birth {
            spawned: 0,
            cap: u32::MAX,
            log: Vec::new(),
        };
        assert_eq!(engine.run(&mut h), RunOutcome::EventLimit);
        assert_eq!(h.log.len(), 3);
    }

    #[test]
    fn horizon_stops_clock() {
        let mut engine = Engine::new();
        engine.set_horizon(SimTime::new(4.0));
        engine.prime(SimTime::new(0.0), 0);
        let mut h = Birth {
            spawned: 0,
            cap: u32::MAX,
            log: Vec::new(),
        };
        assert_eq!(engine.run(&mut h), RunOutcome::Horizon);
        assert_eq!(engine.now().as_secs(), 4.0);
        assert_eq!(h.log, vec![0.0, 1.5, 3.0]);
    }

    struct Stopper;
    impl Handler<u32> for Stopper {
        fn handle<Q: PendingEvents<u32>>(
            &mut self,
            event: u32,
            _sched: &mut Scheduler<'_, u32, Q>,
        ) -> Control {
            if event >= 1 {
                Control::Stop
            } else {
                Control::Continue
            }
        }
    }

    #[test]
    fn handler_can_stop() {
        let mut engine = Engine::new();
        engine.prime(SimTime::new(0.0), 0);
        engine.prime(SimTime::new(1.0), 1);
        engine.prime(SimTime::new(2.0), 2);
        assert_eq!(engine.run(&mut Stopper), RunOutcome::Stopped);
        assert_eq!(engine.now().as_secs(), 1.0);
    }

    #[test]
    fn queue_ops_are_counted() {
        let mut engine = Engine::new();
        engine.prime(SimTime::new(0.0), 0);
        let mut h = Birth {
            spawned: 0,
            cap: 4,
            log: Vec::new(),
        };
        engine.run(&mut h);
        let ops = engine.queue_ops();
        // 1 primed + 4 spawned, all popped; nothing cancelled; at most one
        // event is ever pending in the birth process.
        assert_eq!(ops.scheduled, 5);
        assert_eq!(ops.popped, 5);
        assert_eq!(ops.cancelled, 0);
        assert_eq!(ops.max_pending, 1);
        if !cfg!(feature = "timing") {
            assert!(engine.pop_span().is_empty());
        }
    }

    #[test]
    fn cancellations_count_only_hits() {
        struct Canceller(Option<EventId>);
        impl Handler<u32> for Canceller {
            fn handle<Q: PendingEvents<u32>>(
                &mut self,
                _event: u32,
                sched: &mut Scheduler<'_, u32, Q>,
            ) -> Control {
                if let Some(id) = self.0.take() {
                    assert!(sched.cancel(id));
                    assert!(!sched.cancel(id)); // second try misses
                }
                Control::Continue
            }
        }
        let mut engine = Engine::new();
        engine.prime(SimTime::new(0.0), 0);
        let doomed = engine.prime(SimTime::new(5.0), 1);
        assert_eq!(
            engine.run(&mut Canceller(Some(doomed))),
            RunOutcome::Drained
        );
        let ops = engine.queue_ops();
        assert_eq!(ops.scheduled, 2);
        assert_eq!(ops.cancelled, 1);
        assert_eq!(ops.popped, 1);
        assert_eq!(ops.max_pending, 2);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_past_panics() {
        struct Bad;
        impl Handler<u32> for Bad {
            fn handle<Q: PendingEvents<u32>>(
                &mut self,
                _event: u32,
                sched: &mut Scheduler<'_, u32, Q>,
            ) -> Control {
                sched.schedule_in(-1.0, 0);
                Control::Continue
            }
        }
        let mut engine = Engine::new();
        engine.prime(SimTime::new(5.0), 0);
        engine.run(&mut Bad);
    }
}
