//! Grid configuration: the six operational platforms of §4.1 and the
//! builder that materialises them into concrete machine sets.

use crate::availability::Availability;
use crate::checkpoint::CheckpointConfig;
use crate::machine::{Machine, MachineId};
use crate::outage::OutageConfig;
use crate::power::Heterogeneity;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Declarative description of a desktop grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridConfig {
    /// Sum of machine powers the builder targets (paper: 1000).
    pub total_power: f64,
    /// How machine powers are drawn.
    pub heterogeneity: Heterogeneity,
    /// Machine availability behaviour.
    pub availability: Availability,
    /// Checkpoint server behaviour.
    pub checkpoint: CheckpointConfig,
    /// Optional correlated-outage process on top of the per-machine
    /// availability model (see [`OutageConfig`]).
    #[serde(default)]
    pub outages: Option<OutageConfig>,
}

impl GridConfig {
    /// The paper's total computing power.
    pub const PAPER_TOTAL_POWER: f64 = 1000.0;

    /// One of the six platforms of §4.1 by name, e.g. `Hom`+`HighAvail`.
    pub fn paper(heterogeneity: Heterogeneity, availability: Availability) -> Self {
        GridConfig {
            total_power: Self::PAPER_TOTAL_POWER,
            heterogeneity,
            availability,
            checkpoint: CheckpointConfig::default(),
            outages: None,
        }
    }

    /// All six named configurations in the paper's order.
    pub fn paper_suite() -> Vec<(String, GridConfig)> {
        let mut out = Vec::new();
        for (hname, het) in [("Hom", Heterogeneity::HOM), ("Het", Heterogeneity::HET)] {
            for (aname, avail) in [
                ("HighAvail", Availability::HIGH),
                ("MedAvail", Availability::MED),
                ("LowAvail", Availability::LOW),
            ] {
                out.push((format!("{hname}-{aname}"), GridConfig::paper(het, avail)));
            }
        }
        out
    }

    /// Checks the configuration for values that would poison a run with
    /// NaN/∞ or hang the builder (e.g. non-finite powers from JSON, a
    /// power of 0 that never reaches the total). Call after
    /// deserialisation; `serde` alone accepts any number the format can
    /// carry.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.total_power.is_finite() && self.total_power > 0.0) {
            return Err(format!(
                "grid total_power must be finite and > 0, got {}",
                self.total_power
            ));
        }
        match self.heterogeneity {
            Heterogeneity::Homogeneous { power } => {
                if !(power.is_finite() && power > 0.0) {
                    return Err(format!("machine power must be finite and > 0, got {power}"));
                }
            }
            Heterogeneity::UniformRange { lo, hi } => {
                if !(lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi) {
                    return Err(format!(
                        "machine power range must satisfy 0 < lo <= hi and be finite, got [{lo}, {hi}]"
                    ));
                }
            }
            Heterogeneity::Custom { dist } => {
                let mean = dist.mean();
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(format!(
                        "custom machine-power distribution must have a finite positive mean, got {mean}"
                    ));
                }
            }
        }
        if let Some(o) = &self.outages {
            o.validate()?;
        }
        // The simulator derives its auto-horizon from total_work /
        // effective_power: a grid that delivers no long-run power (zero
        // availability, checkpoint efficiency 0, outages eating every
        // cycle) would propagate a NaN/∞ horizon into the engine. Reject
        // it here with a diagnosis instead.
        let ep = self.effective_power();
        if !(ep.is_finite() && ep > 0.0) {
            return Err(format!(
                "grid delivers no effective power ({ep}): availability, checkpoint \
                 efficiency or outage configuration leaves no usable cycles, so no \
                 workload can ever drain"
            ));
        }
        Ok(())
    }

    /// Materialises the machine set (powers drawn from `rng`).
    pub fn build<R: Rng + ?Sized>(&self, rng: &mut R) -> Grid {
        let powers = self.heterogeneity.generate_powers(self.total_power, rng);
        let machines = powers
            .into_iter()
            .enumerate()
            .map(|(i, power)| Machine {
                id: MachineId(i as u32),
                power,
            })
            .collect();
        Grid {
            machines,
            config: *self,
        }
    }

    /// Mean time between failures as one machine experiences it, combining
    /// the per-machine process with its share of correlated outages:
    /// rates add, so `1/MTBF = 1/MTBF_avail + fraction/MTBO`.
    pub fn machine_mtbf(&self) -> f64 {
        let avail_rate = 1.0 / self.availability.mtbf(); // 0 for Always
        let outage_rate = self.outages.map(|o| o.fraction / o.mtbo).unwrap_or(0.0);
        let rate = avail_rate + outage_rate;
        if rate == 0.0 {
            f64::INFINITY
        } else {
            1.0 / rate
        }
    }

    /// Long-run power the grid delivers to applications: nominal power ×
    /// availability × checkpoint efficiency. This is the denominator of the
    /// paper's demand calculation (§4.2). The checkpoint interval (and so
    /// its efficiency) is driven by the combined [`Self::machine_mtbf`].
    pub fn effective_power(&self) -> f64 {
        let avail = self.availability.long_run_availability();
        let eff = self.checkpoint.efficiency_for_mtbf(self.machine_mtbf());
        let outage_up = 1.0 - self.outages.map(|o| o.unavailability()).unwrap_or(0.0);
        self.total_power * avail * eff * outage_up
    }
}

/// A materialised grid: concrete machines plus the config they came from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grid {
    /// The machines, densely indexed by [`MachineId`].
    pub machines: Vec<Machine>,
    /// The configuration this grid was built from.
    pub config: GridConfig,
}

impl Grid {
    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True when the grid has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Sum of machine powers actually materialised.
    pub fn nominal_power(&self) -> f64 {
        self.machines.iter().map(|m| m.power).sum()
    }

    /// Mean machine power.
    pub fn mean_power(&self) -> f64 {
        if self.machines.is_empty() {
            0.0
        } else {
            self.nominal_power() / self.machines.len() as f64
        }
    }

    /// A machine by id.
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn paper_suite_has_six_configs() {
        let suite = GridConfig::paper_suite();
        assert_eq!(suite.len(), 6);
        let names: Vec<&str> = suite.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "Hom-HighAvail",
                "Hom-MedAvail",
                "Hom-LowAvail",
                "Het-HighAvail",
                "Het-MedAvail",
                "Het-LowAvail"
            ]
        );
    }

    #[test]
    fn build_hom_high() {
        let cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let grid = cfg.build(&mut rng);
        assert_eq!(grid.len(), 100);
        assert_eq!(grid.nominal_power(), 1000.0);
        assert_eq!(grid.mean_power(), 10.0);
        assert_eq!(grid.machine(MachineId(42)).power, 10.0);
    }

    #[test]
    fn effective_power_ordering() {
        let high = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH).effective_power();
        let med = GridConfig::paper(Heterogeneity::HOM, Availability::MED).effective_power();
        let low = GridConfig::paper(Heterogeneity::HOM, Availability::LOW).effective_power();
        assert!(high > med && med > low);
        // HighAvail: 1000 × 0.98 × (9204/(9204+480)) ≈ 931.4
        assert!((high - 931.4).abs() < 1.0, "high={high}");
        // LowAvail: 1000 × 0.50 × (1314.5/(1314.5+480)) ≈ 366.3
        assert!((low - 366.3).abs() < 1.0, "low={low}");
    }

    #[test]
    fn no_failures_no_checkpoint_full_power() {
        let cfg = GridConfig {
            total_power: 500.0,
            heterogeneity: Heterogeneity::HOM,
            availability: Availability::Always,
            checkpoint: CheckpointConfig::disabled(),
            outages: None,
        };
        assert_eq!(cfg.effective_power(), 500.0);
    }

    #[test]
    fn validate_rejects_bad_powers() {
        let mut cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
        assert!(cfg.validate().is_ok());
        cfg.total_power = f64::NAN;
        assert!(cfg.validate().unwrap_err().contains("total_power"));
        cfg.total_power = 0.0;
        assert!(cfg.validate().is_err());
        cfg.total_power = 1000.0;
        cfg.heterogeneity = Heterogeneity::Homogeneous {
            power: f64::INFINITY,
        };
        assert!(cfg.validate().unwrap_err().contains("machine power"));
        cfg.heterogeneity = Heterogeneity::UniformRange { lo: 5.0, hi: 2.0 };
        assert!(cfg.validate().is_err());
        cfg.heterogeneity = Heterogeneity::UniformRange {
            lo: 2.0,
            hi: f64::NAN,
        };
        assert!(cfg.validate().is_err());
        // A NaN smuggled in through JSON (`null`) is exactly what validate
        // is for — serde itself happily accepts any representable number.
        cfg.heterogeneity = Heterogeneity::HET;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_effective_power() {
        // An outage process that takes every machine down all the time
        // leaves effective_power() at 0 — the auto-horizon would divide by
        // it and hand the engine a NaN/∞ cap. validate must name the
        // problem instead.
        let mut cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
        cfg.outages = Some(crate::outage::OutageConfig {
            mtbo: 1.0,
            duration: dgsched_des::dist::DistConfig::Constant { value: f64::MAX },
            fraction: 1.0,
        });
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("effective power"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_outage_parameters() {
        let mut cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
        cfg.outages = Some(crate::outage::OutageConfig {
            mtbo: f64::NAN,
            duration: dgsched_des::dist::DistConfig::Constant { value: 60.0 },
            fraction: 0.5,
        });
        assert!(cfg.validate().unwrap_err().contains("mtbo"));
        cfg.outages = Some(crate::outage::OutageConfig {
            mtbo: 3600.0,
            duration: dgsched_des::dist::DistConfig::Constant { value: 60.0 },
            fraction: 1.5,
        });
        assert!(cfg.validate().unwrap_err().contains("fraction"));
    }

    #[test]
    fn serde_round_trip() {
        let cfg = GridConfig::paper(Heterogeneity::HET, Availability::LOW);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: GridConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
