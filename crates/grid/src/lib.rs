//! # dgsched-grid — the Desktop Grid substrate
//!
//! Models the platform of Anglano & Canonico (2008), §4.1: independently
//! owned machines of heterogeneous power that fail and recover without
//! notice, plus the checkpoint server the WQR-FT scheduler relies on.
//!
//! * [`machine`] — machine descriptions (power, work/wall conversions);
//! * [`power`] — heterogeneity presets (`Hom`, `Het`) and the
//!   fill-to-total-power construction;
//! * [`availability`] — the alternating Weibull/Normal renewal process and
//!   the High/Med/Low calibration;
//! * [`checkpoint`] — Young's interval, transfer costs, the checkpoint
//!   store;
//! * [`config`] — the six named platforms and the grid builder.
//!
//! ## Example
//!
//! ```
//! use dgsched_grid::config::GridConfig;
//! use dgsched_grid::power::Heterogeneity;
//! use dgsched_grid::availability::Availability;
//! use rand::SeedableRng;
//!
//! let cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let grid = cfg.build(&mut rng);
//! assert_eq!(grid.len(), 100);            // Hom: 100 machines of power 10
//! assert!(cfg.effective_power() < 1000.0); // failures + checkpoints
//! ```

#![warn(missing_docs)]

pub mod availability;
pub mod checkpoint;
pub mod config;
pub mod machine;
pub mod outage;
pub mod power;
pub mod trace;

pub use availability::Availability;
pub use checkpoint::{CheckpointConfig, CheckpointStore};
pub use config::{Grid, GridConfig};
pub use machine::{Machine, MachineId};
pub use outage::OutageConfig;
pub use power::{generate_class_powers, Heterogeneity};
pub use trace::AvailabilityTrace;
