//! Static machine description.
//!
//! Runtime state (busy/idle, the replica being executed) belongs to the
//! simulator; this crate describes the platform itself.

use serde::{Deserialize, Serialize};

/// Identifies a machine within one grid (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl MachineId {
    /// Index into per-machine vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A machine: an independently-owned desktop PC donating cycles.
///
/// `power` follows the paper's convention: a dimensionless speed directly
/// proportional to delivered computing rate (a machine with power 10 runs a
/// task twice as fast as one with power 5). Task work is measured in
/// *reference-seconds* — seconds on a machine with power 1 — so wall-clock
/// compute time is `work / power`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// This machine's id.
    pub id: MachineId,
    /// Relative computing power (> 0).
    pub power: f64,
}

impl Machine {
    /// Wall-clock seconds this machine needs for `work` reference-seconds.
    #[inline]
    pub fn wall_time_for(&self, work: f64) -> f64 {
        work / self.power
    }

    /// Reference-seconds of work done in `wall` seconds on this machine.
    #[inline]
    pub fn work_done_in(&self, wall: f64) -> f64 {
        wall * self.power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_scales_wall_time() {
        let m = Machine {
            id: MachineId(0),
            power: 10.0,
        };
        assert_eq!(m.wall_time_for(1000.0), 100.0);
        assert_eq!(m.work_done_in(100.0), 1000.0);
    }

    #[test]
    fn work_wall_round_trip() {
        let m = Machine {
            id: MachineId(3),
            power: 2.3,
        };
        let work = 5417.0;
        let back = m.work_done_in(m.wall_time_for(work));
        assert!((back - work).abs() < 1e-9);
    }

    #[test]
    fn id_display_and_index() {
        assert_eq!(MachineId(7).to_string(), "m7");
        assert_eq!(MachineId(7).index(), 7);
    }
}
