//! Availability traces: generation, analysis and model fitting.
//!
//! The paper's availability model comes from fitting machine traces (Nurmi,
//! Brevik & Wolski — its ref \[12\]). Real enterprise traces are not
//! available here, so this module closes the loop synthetically: it can
//! *record* a fail/repair trace from any [`Availability`] process,
//! compute its empirical statistics, and *fit* a Weibull/Normal model back
//! from the raw durations (maximum likelihood for the Weibull shape, method
//! of moments for the rest) — the same workflow one would run on real
//! traces to configure the simulator.

use crate::availability::Availability;
use dgsched_des::dist::DistConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One up/down cycle of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Seconds the machine stayed up.
    pub up: f64,
    /// Seconds the subsequent repair took.
    pub down: f64,
}

/// A recorded fail/repair trace for a set of machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityTrace {
    /// Per-machine cycles, in order.
    pub machines: Vec<Vec<Segment>>,
    /// Horizon the trace was recorded over (seconds).
    pub horizon: f64,
}

impl AvailabilityTrace {
    /// Records a trace of `n_machines` machines over `horizon` seconds of
    /// the given availability process. Machines that never fail within the
    /// horizon contribute an empty cycle list.
    pub fn record<R: Rng + ?Sized>(
        availability: &Availability,
        n_machines: usize,
        horizon: f64,
        rng: &mut R,
    ) -> Self {
        assert!(horizon > 0.0, "horizon must be positive");
        let sampler = availability.sampler();
        let machines = (0..n_machines)
            .map(|_| {
                let Some(s) = &sampler else { return Vec::new() };
                let mut t = 0.0;
                let mut cycles = Vec::new();
                loop {
                    let up = s.next_up(rng);
                    if t + up >= horizon {
                        break;
                    }
                    let down = s.next_down(rng);
                    cycles.push(Segment { up, down });
                    t += up + down;
                    if t >= horizon {
                        break;
                    }
                }
                cycles
            })
            .collect();
        AvailabilityTrace { machines, horizon }
    }

    /// All up durations across machines.
    pub fn up_durations(&self) -> Vec<f64> {
        self.machines.iter().flatten().map(|s| s.up).collect()
    }

    /// All down durations across machines.
    pub fn down_durations(&self) -> Vec<f64> {
        self.machines.iter().flatten().map(|s| s.down).collect()
    }

    /// Total failures recorded.
    pub fn failures(&self) -> usize {
        self.machines.iter().map(|m| m.len()).sum()
    }

    /// Empirical availability: fraction of machine-time spent up
    /// (uncompleted final up-intervals count as up, which slightly biases
    /// towards the truth for long horizons).
    pub fn empirical_availability(&self) -> f64 {
        let total = self.horizon * self.machines.len() as f64;
        if total == 0.0 {
            return 1.0;
        }
        let down: f64 = self.down_durations().iter().sum();
        ((total - down) / total).clamp(0.0, 1.0)
    }

    /// Fits an availability model back from the recorded durations:
    /// Weibull (MLE) for up-times, truncated Normal (moments) for repairs.
    ///
    /// Returns `None` when the trace holds too few cycles to fit (< 10).
    pub fn fit(&self) -> Option<Availability> {
        let ups = self.up_durations();
        let downs = self.down_durations();
        if ups.len() < 10 || downs.len() < 10 {
            return None;
        }
        let (shape, scale) = fit_weibull_mle(&ups)?;
        let (mean, sd) = fit_normal(&downs);
        Some(Availability::Custom {
            up: DistConfig::Weibull { shape, scale },
            down: DistConfig::NormalTrunc { mean, sd },
        })
    }
}

/// Maximum-likelihood Weibull fit.
///
/// The profile likelihood reduces the problem to one equation in the shape
/// `k`:  `Σ xᵏ ln x / Σ xᵏ − 1/k − mean(ln x) = 0`, which is monotone in
/// `k`; we solve it by bisection on `[0.02, 50]` and recover the scale as
/// `(Σ xᵏ / n)^{1/k}`. Returns `None` for degenerate inputs (all samples
/// equal or non-positive).
pub fn fit_weibull_mle(samples: &[f64]) -> Option<(f64, f64)> {
    if samples.len() < 2 || samples.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let n = samples.len() as f64;
    let mean_ln = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
    let g = |k: f64| {
        let mut sum_xk = 0.0;
        let mut sum_xk_ln = 0.0;
        for &x in samples {
            let xk = x.powf(k);
            sum_xk += xk;
            sum_xk_ln += xk * x.ln();
        }
        sum_xk_ln / sum_xk - 1.0 / k - mean_ln
    };
    let (mut lo, mut hi) = (0.02, 50.0);
    let (glo, ghi) = (g(lo), g(hi));
    if glo.is_nan() || ghi.is_nan() || glo.signum() == ghi.signum() {
        return None; // degenerate (e.g. constant samples)
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if g(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-10 * hi {
            break;
        }
    }
    let k = 0.5 * (lo + hi);
    let scale = (samples.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
    Some((k, scale))
}

/// Sample mean and (unbiased) standard deviation.
pub fn fit_normal(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() < 2 {
        0.0
    } else {
        samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    };
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgsched_des::dist::DistConfig;
    use rand::SeedableRng;
    use rand_distr::Distribution;

    #[test]
    fn record_respects_horizon_and_availability() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let trace = AvailabilityTrace::record(&Availability::LOW, 50, 2e6, &mut rng);
        assert_eq!(trace.machines.len(), 50);
        assert!(
            trace.failures() > 1000,
            "LowAvail must fail a lot: {}",
            trace.failures()
        );
        let a = trace.empirical_availability();
        assert!((a - 0.5).abs() < 0.05, "empirical availability {a}");
    }

    #[test]
    fn always_available_records_nothing() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let trace = AvailabilityTrace::record(&Availability::Always, 5, 1e5, &mut rng);
        assert_eq!(trace.failures(), 0);
        assert_eq!(trace.empirical_availability(), 1.0);
        assert!(trace.fit().is_none(), "nothing to fit");
    }

    #[test]
    fn weibull_mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for &(shape, scale) in &[(0.7f64, 2000.0f64), (1.5, 100.0), (3.0, 50.0)] {
            let dist = rand_distr::Weibull::new(scale, shape).unwrap();
            let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
            let (k, l) = fit_weibull_mle(&samples).expect("fit must succeed");
            assert!((k - shape).abs() / shape < 0.05, "shape {k} vs {shape}");
            assert!((l - scale).abs() / scale < 0.05, "scale {l} vs {scale}");
        }
    }

    #[test]
    fn weibull_mle_rejects_degenerate() {
        assert!(fit_weibull_mle(&[]).is_none());
        assert!(fit_weibull_mle(&[1.0]).is_none());
        assert!(
            fit_weibull_mle(&[5.0, 5.0, 5.0]).is_none(),
            "constant samples"
        );
        assert!(
            fit_weibull_mle(&[1.0, -2.0, 3.0]).is_none(),
            "negative samples"
        );
    }

    #[test]
    fn fit_normal_matches_moments() {
        let (m, s) = fit_normal(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        let (m1, s1) = fit_normal(&[3.0]);
        assert_eq!((m1, s1), (3.0, 0.0));
    }

    #[test]
    fn round_trip_trace_fit_preserves_availability() {
        // Record a trace of the MED process, fit a model back, and check the
        // fitted model's long-run availability matches the original.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let trace = AvailabilityTrace::record(&Availability::MED, 100, 3e6, &mut rng);
        let fitted = trace.fit().expect("enough cycles to fit");
        let a = fitted.long_run_availability();
        assert!((a - 0.75).abs() < 0.03, "fitted availability {a}");
        // The fitted up-time distribution should be Weibull-shaped with the
        // configured default shape.
        if let Availability::Custom {
            up: DistConfig::Weibull { shape, .. },
            ..
        } = fitted
        {
            assert!((shape - 0.7).abs() < 0.07, "fitted shape {shape}");
        } else {
            panic!("expected a fitted Weibull");
        }
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let trace = AvailabilityTrace::record(&Availability::LOW, 3, 1e5, &mut rng);
        let json = serde_json::to_string(&trace).unwrap();
        let back: AvailabilityTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
    }
}
