//! Machine availability: the alternating up/down renewal process.
//!
//! §4.1 of the paper: machines fail and are repaired; *availability* is the
//! long-run fraction of time a machine is up, `MTBF / (MTBF + MTTR)`.
//! Fault (up) durations follow a Weibull distribution (Nurmi, Brevik &
//! Wolski, the paper's ref \[12\]); repair (down) durations are Normal with
//! mean 1800 s and sd 300 s. Three levels are studied: ≈98 % (High),
//! 75 % (Med) and 50 % (Low), obtained by tuning the fault-time mean.

use dgsched_des::dist::{DistConfig, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default Weibull shape for machine up-times. Nurmi et al. fit machine
/// availability with shape < 1 (heavy tail, bursty failures); 0.7 is a
/// representative value from their enterprise traces.
pub const DEFAULT_WEIBULL_SHAPE: f64 = 0.7;

/// Default repair-time distribution: Normal(1800, 300) truncated positive;
/// 99 % of the mass falls in [900, 2700] as the paper notes.
pub const DEFAULT_REPAIR: DistConfig = DistConfig::NormalTrunc {
    mean: 1800.0,
    sd: 300.0,
};

/// An availability preset or a custom up/down process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Availability {
    /// Machines never fail (useful for isolating scheduling effects).
    Always,
    /// Target long-run availability with the default Weibull/Normal shapes.
    Level {
        /// Desired long-run availability in (0, 1).
        availability: f64,
    },
    /// Fully custom up/down distributions.
    Custom {
        /// Distribution of up (time-to-failure) durations.
        up: DistConfig,
        /// Distribution of down (repair) durations.
        down: DistConfig,
    },
}

impl Availability {
    /// The paper's `HighAvail` level (≈ 98 %).
    pub const HIGH: Availability = Availability::Level { availability: 0.98 };
    /// The paper's `MedAvail` level (75 %).
    pub const MED: Availability = Availability::Level { availability: 0.75 };
    /// The paper's `LowAvail` level (50 %).
    pub const LOW: Availability = Availability::Level { availability: 0.50 };

    /// The up/down distributions realising this preset.
    ///
    /// For [`Availability::Level`], MTTR is fixed at the default repair mean
    /// and MTBF is solved from `a = MTBF / (MTBF + MTTR)`; the Weibull scale
    /// is then matched to that MTBF at the default shape.
    pub fn processes(&self) -> Option<(DistConfig, DistConfig)> {
        match *self {
            Availability::Always => None,
            Availability::Level { availability } => {
                assert!(
                    (0.0..1.0).contains(&availability) && availability > 0.0,
                    "availability must be in (0,1), got {availability}"
                );
                let mttr = DEFAULT_REPAIR.mean();
                let mtbf = availability * mttr / (1.0 - availability);
                Some((
                    DistConfig::weibull_with_mean(DEFAULT_WEIBULL_SHAPE, mtbf),
                    DEFAULT_REPAIR,
                ))
            }
            Availability::Custom { up, down } => Some((up, down)),
        }
    }

    /// Long-run availability implied by the configuration.
    pub fn long_run_availability(&self) -> f64 {
        match self.processes() {
            None => 1.0,
            Some((up, down)) => {
                let mtbf = up.mean();
                let mttr = down.mean();
                mtbf / (mtbf + mttr)
            }
        }
    }

    /// Mean time between failures (∞ for `Always`).
    pub fn mtbf(&self) -> f64 {
        match self.processes() {
            None => f64::INFINITY,
            Some((up, _)) => up.mean(),
        }
    }

    /// Compiles per-machine samplers (call once per machine with its own
    /// RNG stream). Returns `None` when machines never fail.
    pub fn sampler(&self) -> Option<UpDownSampler> {
        self.processes().map(|(up, down)| UpDownSampler {
            up: up.sampler(),
            down: down.sampler(),
        })
    }
}

/// Compiled samplers for one machine's alternating renewal process.
#[derive(Debug, Clone, Copy)]
pub struct UpDownSampler {
    up: Sampler,
    down: Sampler,
}

impl UpDownSampler {
    /// Draws the next up (working) duration.
    pub fn next_up<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.up.sample(rng)
    }

    /// Draws the next down (repair) duration.
    pub fn next_down<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.down.sample(rng)
    }

    /// Advances one machine's renewal state to time `t`, consuming up/down
    /// draws until the current window covers `t`. On entry `up` and
    /// `cycle_end` describe the machine's current window (up-ness and the
    /// absolute time it ends); on exit they describe the window containing
    /// `t`. Returns the number of failures (up→down transitions) consumed.
    ///
    /// Because each machine owns a private RNG stream and windows are
    /// drawn strictly in cycle order, reconstructing state on demand here
    /// yields exactly the trajectory an eagerly-evented machine walks —
    /// the basis of the simulator's lazy-availability mode.
    pub fn fast_forward<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        up: &mut bool,
        cycle_end: &mut f64,
        t: f64,
    ) -> u64 {
        let mut failures = 0;
        while *cycle_end <= t {
            if *up {
                *cycle_end += self.next_down(rng);
                *up = false;
                failures += 1;
            } else {
                *cycle_end += self.next_up(rng);
                *up = true;
            }
        }
        failures
    }

    /// Simulates the renewal process for `horizon` seconds and returns the
    /// fraction of time spent up — used by calibration tests.
    pub fn empirical_availability<R: Rng + ?Sized>(&self, horizon: f64, rng: &mut R) -> f64 {
        let mut t = 0.0;
        let mut up_time = 0.0;
        while t < horizon {
            let up = self.next_up(rng).min(horizon - t);
            up_time += up;
            t += up;
            if t >= horizon {
                break;
            }
            t += self.next_down(rng);
        }
        up_time / horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn preset_long_run_values() {
        assert!((Availability::HIGH.long_run_availability() - 0.98).abs() < 1e-12);
        assert!((Availability::MED.long_run_availability() - 0.75).abs() < 1e-12);
        assert!((Availability::LOW.long_run_availability() - 0.50).abs() < 1e-12);
        assert_eq!(Availability::Always.long_run_availability(), 1.0);
    }

    #[test]
    fn mtbf_solved_from_target() {
        // a = 0.98, MTTR = 1800 ⇒ MTBF = 0.98·1800/0.02 = 88 200.
        assert!((Availability::HIGH.mtbf() - 88_200.0).abs() < 1e-6);
        assert!((Availability::MED.mtbf() - 5_400.0).abs() < 1e-9);
        assert!((Availability::LOW.mtbf() - 1_800.0).abs() < 1e-9);
        assert_eq!(Availability::Always.mtbf(), f64::INFINITY);
    }

    #[test]
    fn empirical_availability_matches_target() {
        for (level, target) in [
            (Availability::HIGH, 0.98),
            (Availability::MED, 0.75),
            (Availability::LOW, 0.50),
        ] {
            let s = level.sampler().unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            // Long horizon: renewal-reward converges slowly for shape 0.7.
            let a = s.empirical_availability(3e8, &mut rng);
            assert!((a - target).abs() < 0.02, "target {target}: empirical {a}");
        }
    }

    #[test]
    fn fast_forward_matches_eager_replay() {
        let s = Availability::LOW.sampler().unwrap();
        // Eager walk: materialise every window boundary from one stream.
        let mut eager = rand::rngs::StdRng::seed_from_u64(99);
        let mut boundaries = Vec::new(); // (window_end, up_during_window)
        let mut t = s.next_up(&mut eager);
        let mut up = true;
        while t < 50_000.0 {
            boundaries.push((t, up));
            t += if up {
                s.next_down(&mut eager)
            } else {
                s.next_up(&mut eager)
            };
            up = !up;
        }
        boundaries.push((t, up));
        // Lazy walk from an identically seeded stream, probed at a few
        // points, must land in the same windows with the same fail counts.
        let mut lazy = rand::rngs::StdRng::seed_from_u64(99);
        let mut lup = true;
        let mut lend = s.next_up(&mut lazy);
        let mut total_fails = 0;
        for probe in [1_000.0, 12_000.0, 12_000.0, 33_333.3, 49_999.0] {
            total_fails += s.fast_forward(&mut lazy, &mut lup, &mut lend, probe);
            let (end, wup) = *boundaries
                .iter()
                .find(|&&(end, _)| end > probe)
                .expect("probe within horizon");
            assert_eq!(lend, end, "window end diverged at probe {probe}");
            assert_eq!(lup, wup, "up-ness diverged at probe {probe}");
        }
        let expected: u64 = boundaries
            .iter()
            .filter(|&&(end, up)| end <= 49_999.0 && up)
            .count() as u64;
        assert_eq!(total_fails, expected, "failure count diverged");
    }

    #[test]
    fn always_has_no_sampler() {
        assert!(Availability::Always.sampler().is_none());
        assert!(Availability::Always.processes().is_none());
    }

    #[test]
    fn custom_processes_pass_through() {
        let up = DistConfig::Exponential { mean: 100.0 };
        let down = DistConfig::Constant { value: 25.0 };
        let a = Availability::Custom { up, down };
        assert!((a.long_run_availability() - 0.8).abs() < 1e-12);
        assert_eq!(a.mtbf(), 100.0);
    }

    #[test]
    fn serde_round_trip() {
        let a = Availability::MED;
        let json = serde_json::to_string(&a).unwrap();
        let back: Availability = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
