//! Correlated outages: grid-wide events that take down many machines at
//! once (power failures, campus network cuts, the nightly reboot window).
//!
//! The paper's availability model fails machines *independently*; real
//! desktop grids also exhibit correlated churn, which replication handles
//! much worse — two replicas do not help when both machines die together.
//! [`OutageConfig`] adds a Poisson process of outage events, each knocking
//! out a random fraction of the currently-up machines for a random
//! duration, on top of (or instead of) the per-machine process.

use dgsched_des::dist::{DistConfig, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the correlated-outage process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutageConfig {
    /// Mean time between outage events, seconds (exponential gaps).
    pub mtbo: f64,
    /// Outage duration distribution.
    pub duration: DistConfig,
    /// Probability that a given up machine is hit by a given outage.
    pub fraction: f64,
}

impl OutageConfig {
    /// A work-hours reclaim pattern: roughly once a day, `fraction` of the
    /// machines disappear for a working day of 8 hours (owners reclaim
    /// their desktops). The gap is exponential with a one-day mean rather
    /// than strictly periodic — a standard memoryless approximation.
    pub fn workday(fraction: f64) -> Self {
        const EIGHT_HOURS: f64 = 8.0 * 3600.0;
        const DAY: f64 = 24.0 * 3600.0;
        OutageConfig {
            mtbo: DAY - EIGHT_HOURS,
            duration: DistConfig::NormalTrunc {
                mean: EIGHT_HOURS,
                sd: 1_800.0,
            },
            fraction,
        }
    }

    /// Validates parameters.
    pub fn validate(&self) -> Result<(), String> {
        // `mtbo <= 0.0` alone lets NaN through (every comparison with NaN
        // is false) — demand finiteness explicitly.
        if !(self.mtbo.is_finite() && self.mtbo > 0.0) {
            return Err(format!(
                "outage mtbo (mean time between outages) must be finite and positive, got {}",
                self.mtbo
            ));
        }
        if !(self.fraction.is_finite() && self.fraction > 0.0 && self.fraction <= 1.0) {
            return Err(format!(
                "outage fraction must be in (0, 1], got {}",
                self.fraction
            ));
        }
        self.duration.validate()
    }

    /// Long-run fraction of machine-time lost to outages:
    /// `fraction · E[duration] / (mtbo + E[duration])` — each machine is
    /// hit by a `fraction`-thinned version of the outage process.
    pub fn unavailability(&self) -> f64 {
        let d = self.duration.mean();
        self.fraction * d / (self.mtbo + d)
    }

    /// Compiles the samplers.
    pub fn sampler(&self) -> OutageSampler {
        self.validate().expect("invalid outage config");
        OutageSampler {
            gap: DistConfig::Exponential { mean: self.mtbo }.sampler(),
            duration: self.duration.sampler(),
            fraction: self.fraction,
        }
    }
}

/// Compiled outage samplers.
#[derive(Debug, Clone, Copy)]
pub struct OutageSampler {
    gap: Sampler,
    duration: Sampler,
    fraction: f64,
}

impl OutageSampler {
    /// Time until the next outage event.
    pub fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.gap.sample(rng)
    }

    /// Duration of an outage.
    pub fn duration<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.duration.sample(rng)
    }

    /// Whether a particular machine is hit by this outage.
    pub fn hits<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> OutageConfig {
        OutageConfig {
            mtbo: 10_000.0,
            duration: DistConfig::NormalTrunc {
                mean: 1_800.0,
                sd: 300.0,
            },
            fraction: 0.5,
        }
    }

    #[test]
    fn unavailability_formula() {
        // 0.5 · 1800 / (10000 + 1800) ≈ 0.0763
        assert!((cfg().unavailability() - 0.5 * 1800.0 / 11_800.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(cfg().validate().is_ok());
        assert!(OutageConfig { mtbo: 0.0, ..cfg() }.validate().is_err());
        assert!(OutageConfig {
            fraction: 0.0,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(OutageConfig {
            fraction: 1.5,
            ..cfg()
        }
        .validate()
        .is_err());
        assert!(OutageConfig {
            fraction: 1.0,
            ..cfg()
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn workday_preset_loses_a_third_of_daytime_capacity() {
        let w = OutageConfig::workday(1.0);
        assert!(w.validate().is_ok());
        // 8h lost per ~24h cycle ⇒ unavailability = 8/24 = 1/3.
        assert!((w.unavailability() - 1.0 / 3.0).abs() < 1e-9);
        let half = OutageConfig::workday(0.5);
        assert!((half.unavailability() - 1.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_statistics() {
        let s = cfg().sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean_gap: f64 = (0..n).map(|_| s.next_gap(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean_gap - 10_000.0).abs() / 10_000.0 < 0.02,
            "gap {mean_gap}"
        );
        let hits = (0..n).filter(|_| s.hits(&mut rng)).count();
        assert!((hits as f64 / n as f64 - 0.5).abs() < 0.02);
        let d = s.duration(&mut rng);
        assert!(d > 0.0);
    }
}
