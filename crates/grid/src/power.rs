//! Machine-power (heterogeneity) presets.
//!
//! §4.1 of the paper: the grid's *total* power is fixed (1000) and machines
//! are added until their powers sum to it. Two presets are evaluated:
//!
//! * **Hom** — every machine has power 10 (⇒ exactly 100 machines);
//! * **Het** — powers uniform in [2.3, 17.7] (mean 10 ⇒ ≈ 100 machines),
//!   the range used by Cirne et al. and adopted by the paper.

use dgsched_des::dist::DistConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How individual machine powers are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum Heterogeneity {
    /// All machines have the same power (paper's `Hom`, value 10).
    Homogeneous {
        /// Power of every machine.
        power: f64,
    },
    /// Powers uniform in `[lo, hi]` (paper's `Het`, [2.3, 17.7]).
    UniformRange {
        /// Lower bound of machine power.
        lo: f64,
        /// Upper bound of machine power.
        hi: f64,
    },
    /// Arbitrary distribution of machine power.
    Custom {
        /// Distribution machine powers are drawn from.
        dist: DistConfig,
    },
}

/// Generates machine powers for a discrete fleet: machines come in a few
/// hardware classes, each `(power, weight)`, drawn with probability
/// proportional to weight until the total power target is reached. Models
/// real desktop fleets (sites buy machines in batches) better than a
/// uniform spread; pair with [`crate::config::Grid`] by building the
/// machine list directly.
pub fn generate_class_powers<R: Rng + ?Sized>(
    classes: &[(f64, f64)],
    total_power: f64,
    rng: &mut R,
) -> Vec<f64> {
    assert!(!classes.is_empty(), "need at least one machine class");
    assert!(
        classes.iter().all(|&(p, w)| p > 0.0 && w > 0.0),
        "class powers and weights must be positive"
    );
    assert!(total_power > 0.0, "total power must be positive");
    let weight_sum: f64 = classes.iter().map(|c| c.1).sum();
    let mut powers = Vec::new();
    let mut sum = 0.0;
    while sum < total_power {
        let mut x = rng.gen_range(0.0..weight_sum);
        let mut chosen = classes[classes.len() - 1].0;
        for &(p, w) in classes {
            if x < w {
                chosen = p;
                break;
            }
            x -= w;
        }
        powers.push(chosen);
        sum += chosen;
    }
    powers
}

impl Heterogeneity {
    /// The paper's `Hom` level: every machine has power 10.
    pub const HOM: Heterogeneity = Heterogeneity::Homogeneous { power: 10.0 };
    /// The paper's `Het` level: power uniform in [2.3, 17.7].
    pub const HET: Heterogeneity = Heterogeneity::UniformRange { lo: 2.3, hi: 17.7 };

    /// Mean machine power under this preset.
    pub fn mean_power(&self) -> f64 {
        match *self {
            Heterogeneity::Homogeneous { power } => power,
            Heterogeneity::UniformRange { lo, hi } => 0.5 * (lo + hi),
            Heterogeneity::Custom { dist } => dist.mean(),
        }
    }

    /// Draws one machine power.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Heterogeneity::Homogeneous { power } => power,
            Heterogeneity::UniformRange { lo, hi } => rng.gen_range(lo..=hi),
            Heterogeneity::Custom { dist } => dist.sample(rng),
        }
    }

    /// Generates machine powers until their sum reaches `total_power`
    /// (§4.1: "repeatedly adding machines until the sum of their computing
    /// power reached the total computing power value").
    ///
    /// The final machine is kept even if it overshoots slightly, mirroring
    /// the paper's construction; the overshoot is bounded by one machine's
    /// power.
    pub fn generate_powers<R: Rng + ?Sized>(&self, total_power: f64, rng: &mut R) -> Vec<f64> {
        assert!(total_power > 0.0, "total power must be positive");
        let mut powers = Vec::with_capacity((total_power / self.mean_power()).ceil() as usize + 1);
        let mut sum = 0.0;
        while sum < total_power {
            let p = self.sample(rng);
            assert!(p > 0.0, "machine power must be positive, got {p}");
            powers.push(p);
            sum += p;
        }
        powers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn hom_gives_exactly_100_machines() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let powers = Heterogeneity::HOM.generate_powers(1000.0, &mut rng);
        assert_eq!(powers.len(), 100);
        assert!(powers.iter().all(|&p| p == 10.0));
    }

    #[test]
    fn het_gives_about_100_machines() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let powers = Heterogeneity::HET.generate_powers(1000.0, &mut rng);
        // Mean power 10 ⇒ expect ~100; allow generous slack for one seed.
        assert!(
            (80..=125).contains(&powers.len()),
            "{} machines",
            powers.len()
        );
        assert!(powers.iter().all(|&p| (2.3..=17.7).contains(&p)));
        let sum: f64 = powers.iter().sum();
        assert!((1000.0..1000.0 + 17.7).contains(&sum));
    }

    #[test]
    fn mean_power_presets() {
        assert_eq!(Heterogeneity::HOM.mean_power(), 10.0);
        assert!((Heterogeneity::HET.mean_power() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn custom_dist_is_respected() {
        let het = Heterogeneity::Custom {
            dist: DistConfig::Constant { value: 25.0 },
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let powers = het.generate_powers(100.0, &mut rng);
        assert_eq!(powers.len(), 4);
        assert_eq!(het.mean_power(), 25.0);
    }

    #[test]
    fn class_fleet_draws_only_listed_powers() {
        let classes = [(5.0, 1.0), (10.0, 2.0), (20.0, 1.0)];
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let powers = generate_class_powers(&classes, 2_000.0, &mut rng);
        assert!(powers.iter().all(|p| [5.0, 10.0, 20.0].contains(p)));
        let sum: f64 = powers.iter().sum();
        assert!((2_000.0..2_020.0).contains(&sum));
        // The weight-2 class should dominate the draw.
        let tens = powers.iter().filter(|&&p| p == 10.0).count();
        assert!(
            tens as f64 / powers.len() as f64 > 0.35,
            "weighted class underrepresented: {tens}/{}",
            powers.len()
        );
    }

    #[test]
    #[should_panic]
    fn class_fleet_rejects_empty() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let _ = generate_class_powers(&[], 100.0, &mut rng);
    }

    #[test]
    fn total_power_reached() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for het in [Heterogeneity::HOM, Heterogeneity::HET] {
            let powers = het.generate_powers(500.0, &mut rng);
            let sum: f64 = powers.iter().sum();
            assert!(sum >= 500.0);
            // Removing the last machine must drop below the target.
            let sum_but_last: f64 = powers[..powers.len() - 1].iter().sum();
            assert!(sum_but_last < 500.0);
        }
    }
}
