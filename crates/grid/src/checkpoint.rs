//! Checkpointing model: the checkpoint server, transfer costs and Young's
//! optimal checkpoint interval.
//!
//! The paper (§3.2, footnote 1) assumes one or more checkpoint servers;
//! saving or retrieving a checkpoint costs a transfer uniformly distributed
//! in [240, 720] s (§4.1), and each application checkpoints at the interval
//! given by Young's first-order formula `τ = sqrt(2 · δ · MTBF)` where δ is
//! the mean checkpoint cost.

use dgsched_des::dist::{DistConfig, Sampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Young's first-order optimal checkpoint interval.
///
/// Returns `+inf` when the MTBF is infinite (never checkpoint on a grid
/// that never fails).
pub fn young_interval(mean_checkpoint_cost: f64, mtbf: f64) -> f64 {
    assert!(
        mean_checkpoint_cost > 0.0,
        "checkpoint cost must be positive"
    );
    assert!(mtbf > 0.0, "MTBF must be positive");
    if mtbf.is_infinite() {
        f64::INFINITY
    } else {
        (2.0 * mean_checkpoint_cost * mtbf).sqrt()
    }
}

fn default_interval_factor() -> f64 {
    1.0
}

/// Checkpointing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Whether checkpointing is enabled at all (WQR-FT: yes; plain WQR: no).
    pub enabled: bool,
    /// Distribution of the time to write a checkpoint to the server.
    pub save_cost: DistConfig,
    /// Distribution of the time to retrieve a checkpoint from the server.
    pub retrieve_cost: DistConfig,
    /// Multiplier on Young's interval (1.0 = the paper's setting; < 1
    /// checkpoints more often, > 1 less often). Exists for the
    /// checkpoint-interval sensitivity ablation.
    #[serde(default = "default_interval_factor")]
    pub interval_factor: f64,
}

impl Default for CheckpointConfig {
    /// The paper's setting: transfers uniform in [240, 720] s, Young's
    /// interval as published.
    fn default() -> Self {
        CheckpointConfig {
            enabled: true,
            save_cost: DistConfig::Uniform {
                lo: 240.0,
                hi: 720.0,
            },
            retrieve_cost: DistConfig::Uniform {
                lo: 240.0,
                hi: 720.0,
            },
            interval_factor: 1.0,
        }
    }
}

impl CheckpointConfig {
    /// A configuration with checkpointing disabled.
    pub fn disabled() -> Self {
        CheckpointConfig {
            enabled: false,
            ..CheckpointConfig::default()
        }
    }

    /// Checkpoint interval for applications on a grid with the given MTBF
    /// (Young's formula with this config's mean save cost, scaled by
    /// `interval_factor`); `+inf` when checkpointing is disabled.
    pub fn interval_for_mtbf(&self, mtbf: f64) -> f64 {
        assert!(
            self.interval_factor > 0.0,
            "interval factor must be positive"
        );
        if !self.enabled {
            f64::INFINITY
        } else {
            self.interval_factor * young_interval(self.save_cost.mean(), mtbf)
        }
    }

    /// Long-run fraction of machine time spent computing (rather than
    /// writing checkpoints): `τ / (τ + δ̄)`. Used by the workload calculator
    /// to derive arrival rates.
    pub fn efficiency_for_mtbf(&self, mtbf: f64) -> f64 {
        let tau = self.interval_for_mtbf(mtbf);
        if tau.is_infinite() {
            1.0
        } else {
            tau / (tau + self.save_cost.mean())
        }
    }

    /// Compiles the samplers.
    pub fn sampler(&self) -> CheckpointSampler {
        CheckpointSampler {
            enabled: self.enabled,
            save: self.save_cost.sampler(),
            retrieve: self.retrieve_cost.sampler(),
        }
    }
}

/// Compiled checkpoint-cost samplers.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointSampler {
    enabled: bool,
    save: Sampler,
    retrieve: Sampler,
}

impl CheckpointSampler {
    /// Whether checkpointing is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Draws a checkpoint-write duration.
    pub fn save_cost<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.save.sample(rng)
    }

    /// Draws a checkpoint-retrieve duration.
    pub fn retrieve_cost<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.retrieve.sample(rng)
    }
}

/// The checkpoint server: stores, per task, the largest amount of completed
/// work any replica has saved. Indexed by a caller-chosen dense task key.
///
/// The server is deliberately simple — the paper treats it as reliable
/// shared storage whose only cost is the transfer time.
#[derive(Debug, Clone, Default)]
pub struct CheckpointStore {
    saved: Vec<f64>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore { saved: Vec::new() }
    }

    /// Ensures capacity for task keys `< n`.
    pub fn ensure(&mut self, n: usize) {
        if self.saved.len() < n {
            self.saved.resize(n, 0.0);
        }
    }

    /// Saved work for a task (0 when never checkpointed).
    pub fn saved_work(&self, task_key: usize) -> f64 {
        self.saved.get(task_key).copied().unwrap_or(0.0)
    }

    /// Records a checkpoint of `work` completed reference-seconds; keeps the
    /// maximum across replicas. Returns the stored value.
    pub fn save(&mut self, task_key: usize, work: f64) -> f64 {
        self.ensure(task_key + 1);
        let slot = &mut self.saved[task_key];
        if work > *slot {
            *slot = work;
        }
        *slot
    }

    /// Drops a completed task's checkpoint (frees server space).
    pub fn discard(&mut self, task_key: usize) {
        if let Some(slot) = self.saved.get_mut(task_key) {
            *slot = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn young_formula_values() {
        // τ = sqrt(2·480·88200) = sqrt(84 672 000) ≈ 9201.74
        assert!((young_interval(480.0, 88_200.0) - 9_201.74).abs() < 0.1);
        // τ = sqrt(2·480·1800) = sqrt(1 728 000) ≈ 1314.53
        assert!((young_interval(480.0, 1_800.0) - 1_314.53).abs() < 0.01);
        assert_eq!(young_interval(480.0, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn efficiency_increases_with_mtbf() {
        let cfg = CheckpointConfig::default();
        let low = cfg.efficiency_for_mtbf(1_800.0);
        let high = cfg.efficiency_for_mtbf(88_200.0);
        assert!(low < high);
        assert!((low - 1314.53 / (1314.53 + 480.0)).abs() < 1e-3);
        assert!(high < 1.0);
        assert_eq!(
            CheckpointConfig::disabled().efficiency_for_mtbf(1_800.0),
            1.0
        );
    }

    #[test]
    fn interval_factor_scales_tau() {
        let base = CheckpointConfig::default();
        let double = CheckpointConfig {
            interval_factor: 2.0,
            ..base
        };
        let half = CheckpointConfig {
            interval_factor: 0.5,
            ..base
        };
        let mtbf = 5_400.0;
        assert!((double.interval_for_mtbf(mtbf) - 2.0 * base.interval_for_mtbf(mtbf)).abs() < 1e-9);
        assert!((half.interval_for_mtbf(mtbf) - 0.5 * base.interval_for_mtbf(mtbf)).abs() < 1e-9);
        // Efficiency is best near the Young point for fixed cost model.
        assert!(half.efficiency_for_mtbf(mtbf) < base.efficiency_for_mtbf(mtbf));
    }

    #[test]
    fn transfer_costs_in_paper_range() {
        let s = CheckpointConfig::default().sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let c = s.save_cost(&mut rng);
            assert!((240.0..720.0).contains(&c), "save cost {c}");
            let r = s.retrieve_cost(&mut rng);
            assert!((240.0..720.0).contains(&r), "retrieve cost {r}");
        }
        assert!(s.enabled());
    }

    #[test]
    fn store_keeps_max_progress() {
        let mut store = CheckpointStore::new();
        assert_eq!(store.saved_work(3), 0.0);
        assert_eq!(store.save(3, 100.0), 100.0);
        assert_eq!(
            store.save(3, 50.0),
            100.0,
            "older checkpoint must not regress"
        );
        assert_eq!(store.save(3, 150.0), 150.0);
        assert_eq!(store.saved_work(3), 150.0);
        store.discard(3);
        assert_eq!(store.saved_work(3), 0.0);
    }

    #[test]
    fn store_discard_unknown_key_is_noop() {
        let mut store = CheckpointStore::new();
        store.discard(99);
        assert_eq!(store.saved_work(99), 0.0);
    }
}
