#!/usr/bin/env bash
# Offline CI gate: tier-1 verify (ROADMAP.md) plus lints and formatting.
# Run from anywhere inside the repository; no network access required.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> determinism lint gate: dgsched-analyze"
# Walks crates/**/*.rs and fails on any unannotated result-path
# determinism violation (unordered iteration, wall-clock reads, NaN-lossy
# float ordering, thread identity). Suppressions must carry a written
# reason; the lint's fixture battery runs inside `cargo test` above.
cargo run --release -q -p dgsched-analyze -- lint

echo "==> parallel-determinism gate: threads forced to 1, forced to 4, and default"
# The test compares run_matrix JSON across pool widths in-process; running
# it under three different environment baselines re-proves the equality
# whatever DGSCHED_THREADS/RAYON_NUM_THREADS resolve to, and fails on any
# diff.
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test parallel_determinism
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test parallel_determinism
cargo test -q -p dgsched-core --test parallel_determinism

echo "==> journal gate: kill/resume determinism at widths 1 and 4"
# The journal contract: a sweep killed at any byte of the journal and
# resumed must serialise byte-identical ScenarioResult JSON, and a
# panicking replication is isolated instead of aborting the sweep. The
# test simulates kills by truncating the journal mid-record and re-proves
# the equality at explicit pool widths under both environment baselines.
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test journal_resume
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test journal_resume

echo "==> serve gate: daemon dedupe + kill/resume at widths 1 and 4"
# The sweep service contract: concurrent identical requests execute one
# sweep and serve byte-identical bytes, and a daemon SIGKILLed mid-sweep
# resumes from its journal to the same bytes after restart. The tests
# spawn the real dgsched binary and pin its width per-test; running the
# battery under both environment baselines re-proves it whatever the
# inherited DGSCHED_THREADS resolves to. The --check self-test is the
# deployable liveness probe (bind, sweep, verify a byte-identical hit).
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test serve
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test serve
cargo run --release -q -p dgsched-core --bin dgsched -- serve --check

echo "==> lockcheck gate: lock-order witness on, pool/single-flight/journal batteries"
# The witness must (a) catch the reconstructed PR-5 hold-and-wait cycle
# deterministically (parking_lot unit tests + tests/lockcheck.rs), and
# (b) stay result-passive: the golden-fingerprint test inside
# tests/lockcheck.rs pins run_matrix bytes to the seed value in BOTH
# feature configurations, and the determinism batteries re-run with the
# witness live at widths 1 and 4.
cargo test -q -p parking_lot --features lockcheck
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --features lockcheck \
  --lib --test lockcheck --test parallel_determinism --test journal_resume --test serve
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --features lockcheck \
  --lib --test lockcheck --test parallel_determinism --test journal_resume --test serve

echo "==> oracle gate: replay exactness + regret battery at widths 1 and 4"
# The hindsight-oracle contract: trace replay reproduces the live run
# byte-identically (tests/trace_replay.rs), and the regret battery —
# oracle ≤ best observed policy per cell, regret ≥ 0 across the full
# matrix, search byte-identical across pool widths and across resumed
# restarts (tests/oracle_regret.rs) — holds under both environment
# baselines.
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test trace_replay --test oracle_regret
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test trace_replay --test oracle_regret

echo "==> generator gate: sampler calibration + dgsched gen byte-identity at widths 1 and 4"
# The trace-realistic workload contract: the Pareto/Zipf/lognormal/MMPP
# samplers hit their analytic moments over random parameterisations
# (crates/workload/tests/dist_properties.rs), and `dgsched gen` emits
# byte-identical scenarios/workloads for a fixed seed at any pool width,
# rejects malformed distribution specs with usage errors, and its output
# runs through `dgsched run`/`oracle` unmodified (tests/gen.rs).
DGSCHED_THREADS=1 cargo test -q -p dgsched-workload
DGSCHED_THREADS=4 cargo test -q -p dgsched-workload
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test gen
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test gen

echo "==> telemetry gate: obs crate with and without the timing feature"
# The observer seam must stay passive: the obs crate and its profiling
# spans are built and tested in both configurations, and the passivity
# battery re-runs with DGSCHED_TRACE exercised inside the test itself.
cargo test -q -p dgsched-obs
cargo test -q -p dgsched-obs --features timing
cargo test -q -p dgsched-core --features timing --test observer_passivity

echo "==> tracing/journal-overhead smoke: bench_sim_json"
# Writes plain / metrics / metrics+ring wall-clock and journal-off vs
# journal-on sweep wall-clock into BENCH_sim.json, asserting instrumented
# runs and journaled sweeps produce byte-identical result JSON.
cargo run --release -q -p dgsched-bench --bin bench_sim_json -- --out /tmp/BENCH_sim.ci.json
python3 - <<'EOF'
import json
doc = json.load(open("/tmp/BENCH_sim.ci.json"))
o = doc["overhead"]
assert o["identical_result"], "instrumented runs diverged from plain"
print(f"tracer overhead ratio: {o['overhead_ratio']:.3f} (events={o['events']})")
j = doc["journal"]
assert j["identical_result"], "journaled sweep diverged from plain"
print(f"journal overhead ratio: {j['overhead_ratio']:.3f} "
      f"(records={j['records']}, resume {j['resume_s']:.2f}s)")
orc = doc["oracle"]
assert orc["identical_result"], "oracle search diverged across pool widths"
for run in orc["runs"]:
    print(f"oracle search @ {run['threads']} threads: "
          f"{run['restarts_per_s']:.1f} restarts/s")
EOF

if [ "${DGSCHED_BENCH_SMOKE:-0}" = "1" ]; then
  echo "==> huge-tier scaling smoke: bench_sim_json --smoke"
  # Opt-in (slow): re-runs the 10k-machine tier only and fails when
  # FCFS-Excl's events/s falls below a quarter of the other policies'
  # median — the canary for the replica-churn scaling cliff.
  cargo run --release -q -p dgsched-bench --bin bench_sim_json -- --smoke
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo clippy -p dgsched-obs --features timing -- -D warnings"
cargo clippy -p dgsched-obs --features timing -- -D warnings

echo "==> cargo clippy -p dgsched-core --features lockcheck -- -D warnings"
cargo clippy -p dgsched-core --features lockcheck -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
