#!/usr/bin/env bash
# Offline CI gate: tier-1 verify (ROADMAP.md) plus lints and formatting.
# Run from anywhere inside the repository; no network access required.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
