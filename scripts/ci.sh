#!/usr/bin/env bash
# Offline CI gate: tier-1 verify (ROADMAP.md) plus lints and formatting.
# Run from anywhere inside the repository; no network access required.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> parallel-determinism gate: threads forced to 1, forced to 4, and default"
# The test compares run_matrix JSON across pool widths in-process; running
# it under three different environment baselines re-proves the equality
# whatever DGSCHED_THREADS/RAYON_NUM_THREADS resolve to, and fails on any
# diff.
DGSCHED_THREADS=1 cargo test -q -p dgsched-core --test parallel_determinism
DGSCHED_THREADS=4 cargo test -q -p dgsched-core --test parallel_determinism
cargo test -q -p dgsched-core --test parallel_determinism

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI gate passed."
