//! Scaled-down checks of the paper's qualitative findings (§4.3). These run
//! the real experiment pipeline at a size small enough for CI; the full
//! figures come from the dgsched-bench binaries (see EXPERIMENTS.md).

use dgsched_core::experiment::{run_scenario, Scenario, WorkloadKind};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::SimConfig;
use dgsched_des::stats::StoppingRule;
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};

fn rule() -> StoppingRule {
    StoppingRule {
        min_replications: 4,
        max_replications: 6,
        ..Default::default()
    }
}

fn scenario(
    granularity: f64,
    intensity: Intensity,
    availability: Availability,
    policy: PolicyKind,
    bags: usize,
) -> Scenario {
    Scenario {
        name: format!("paper g={granularity} {policy}"),
        grid: GridConfig::paper(Heterogeneity::HOM, availability),
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType::paper(granularity),
            intensity,
            count: bags,
        }),
        policy,
        sim: SimConfig {
            warmup_bags: 3,
            ..SimConfig::default()
        },
    }
}

fn mean(s: &Scenario) -> f64 {
    let r = run_scenario(s, 2008, &rule());
    assert!(!r.saturated, "{} saturated", s.name);
    r.turnaround.mean
}

/// §4.3, Fig. 1(a): at the highest granularity, FCFS-Excl wastes the grid
/// on useless replicas of one bag and is beaten decisively by RR.
#[test]
fn fcfs_excl_collapses_at_high_granularity() {
    let bags = 25;
    let excl = mean(&scenario(
        125_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::FcfsExcl,
        bags,
    ));
    let rr = mean(&scenario(
        125_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::Rr,
        bags,
    ));
    assert!(
        excl > 2.0 * rr,
        "paper: FCFS-Excl far worse at g=125000 (excl {excl:.0} vs rr {rr:.0})"
    );
}

/// §4.3, Fig. 1(a): at low granularity the FCFS family beats RR — bags have
/// far more tasks than machines, replication is irrelevant, and RR's bag
/// interleaving only stretches makespans.
#[test]
fn fcfs_beats_rr_at_low_granularity() {
    let bags = 25;
    let share = mean(&scenario(
        1_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::FcfsShare,
        bags,
    ));
    let rr = mean(&scenario(
        1_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::Rr,
        bags,
    ));
    assert!(
        share < rr,
        "paper: FCFS-Share better at g=1000 (share {share:.0} vs rr {rr:.0})"
    );
}

/// §4.3: low-availability platforms roughly double turnaround relative to
/// high-availability ones (Fig. 2(a) vs Fig. 1(a)).
#[test]
fn low_availability_roughly_doubles_turnaround() {
    let bags = 20;
    let high = mean(&scenario(
        5_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::FcfsShare,
        bags,
    ));
    let low = mean(&scenario(
        5_000.0,
        Intensity::Low,
        Availability::LOW,
        PolicyKind::FcfsShare,
        bags,
    ));
    let ratio = low / high;
    assert!(
        (1.4..4.0).contains(&ratio),
        "paper: LowAvail ≈ 2× HighAvail turnaround, got {ratio:.2}× ({low:.0}/{high:.0})"
    );
}

/// §3.3: RR "corresponds to the random bag selection strategy described in
/// \[9\], where all BoTs are chosen with equal probability" — the two must
/// track each other.
#[test]
fn rr_corresponds_to_random_selection() {
    let bags = 25;
    let rr = mean(&scenario(
        25_000.0,
        Intensity::Medium,
        Availability::HIGH,
        PolicyKind::Rr,
        bags,
    ));
    let random = mean(&scenario(
        25_000.0,
        Intensity::Medium,
        Availability::HIGH,
        PolicyKind::Random,
        bags,
    ));
    let rel = (rr - random).abs() / rr;
    assert!(
        rel < 0.25,
        "RR {rr:.0} vs Random {random:.0}: {:.0}% apart",
        rel * 100.0
    );
}

/// §4.3's mechanism: at high granularity "RR-based strategies … tend to
/// reduce waiting time at the (possible) detriment of the makespan".
/// Compare the decomposition, not just the total.
#[test]
fn rr_trades_makespan_for_waiting_at_high_granularity() {
    use dgsched_core::experiment::run_replication;
    let bags = 30;
    let mk = |policy| scenario(125_000.0, Intensity::High, Availability::HIGH, policy, bags);
    let mut rr_wait = 0.0;
    let mut rr_mk = 0.0;
    let mut ex_wait = 0.0;
    let mut ex_mk = 0.0;
    for rep in 0..4 {
        let rr = run_replication(&mk(PolicyKind::Rr), 5, rep);
        let ex = run_replication(&mk(PolicyKind::FcfsExcl), 5, rep);
        rr_wait += rr.mean_waiting();
        rr_mk += rr.mean_makespan();
        ex_wait += ex.mean_waiting();
        ex_mk += ex.mean_makespan();
    }
    assert!(
        rr_wait < ex_wait,
        "RR must cut waiting vs FCFS-Excl: {rr_wait:.0} vs {ex_wait:.0}"
    );
    assert!(
        rr_mk > ex_mk,
        "…at the cost of makespan: {rr_mk:.0} vs {ex_mk:.0}"
    );
}

/// §4.3, low availability: "the strategies that give priority to replica
/// creation (FCFS-based and LongIdle) exhibit performance better than the
/// RR-based policies for task granularity up to [25 000] s (while in the
/// HighAvail scenarios this was true for granularity values up to
/// 5 000 s)" — the crossover moves right when failures are frequent.
#[test]
fn crossover_moves_right_under_low_availability() {
    let bags = 25;
    // At g=25000: RR wins on HighAvail…
    let share_high = mean(&scenario(
        25_000.0,
        Intensity::High,
        Availability::HIGH,
        PolicyKind::FcfsShare,
        bags,
    ));
    let rr_high = mean(&scenario(
        25_000.0,
        Intensity::High,
        Availability::HIGH,
        PolicyKind::Rr,
        bags,
    ));
    assert!(
        rr_high < share_high,
        "HighAvail g=25000: RR {rr_high:.0} should beat FCFS-Share {share_high:.0}"
    );
    // …but on LowAvail the replica-friendly policy is back ahead (or at
    // least the RR advantage collapses).
    let share_low = mean(&scenario(
        25_000.0,
        Intensity::Low,
        Availability::LOW,
        PolicyKind::FcfsShare,
        bags,
    ));
    let rr_low = mean(&scenario(
        25_000.0,
        Intensity::Low,
        Availability::LOW,
        PolicyKind::Rr,
        bags,
    ));
    let high_advantage = share_high / rr_high;
    let low_advantage = share_low / rr_low;
    assert!(
        low_advantage < high_advantage,
        "RR's relative advantage must shrink on LowAvail: {low_advantage:.2} vs {high_advantage:.2}"
    );
}

/// E4 regression: on mixed-granularity workloads (the paper's future work
/// §5) LongIdle dominates RR — RR gives every bag an equal share and
/// thereby starves the small-granularity class.
#[test]
fn longidle_beats_rr_on_mixed_workloads() {
    use dgsched_workload::MixSpec;
    let mk = |policy| Scenario {
        name: format!("mix {policy}"),
        grid: GridConfig::paper(Heterogeneity::HOM, Availability::HIGH),
        workload: WorkloadKind::Mixed(MixSpec::paper_uniform(Intensity::High, 40)),
        policy,
        sim: SimConfig {
            warmup_bags: 4,
            ..SimConfig::default()
        },
    };
    let li = mean(&mk(PolicyKind::LongIdle));
    let rr = mean(&mk(PolicyKind::Rr));
    assert!(
        li < rr,
        "LongIdle must win the mix: LongIdle {li:.0} vs RR {rr:.0}"
    );
}

/// E4's mechanism, via the fairness metric: under RR the *max* slowdown
/// (worst-served bag) far exceeds LongIdle's.
#[test]
fn rr_starves_small_bags_in_the_mix() {
    use dgsched_core::experiment::run_replication;
    use dgsched_workload::MixSpec;
    let mk = |policy| Scenario {
        name: format!("mix {policy}"),
        grid: GridConfig::paper(Heterogeneity::HOM, Availability::HIGH),
        workload: WorkloadKind::Mixed(MixSpec::paper_uniform(Intensity::High, 40)),
        policy,
        sim: SimConfig {
            warmup_bags: 4,
            ..SimConfig::default()
        },
    };
    let mut rr_max = 0.0f64;
    let mut li_max = 0.0f64;
    for rep in 0..3 {
        rr_max += run_replication(&mk(PolicyKind::Rr), 11, rep).max_slowdown();
        li_max += run_replication(&mk(PolicyKind::LongIdle), 11, rep).max_slowdown();
    }
    assert!(
        rr_max > 1.5 * li_max,
        "RR's worst-case slowdown should dwarf LongIdle's: {rr_max:.0} vs {li_max:.0}"
    );
}

/// §4.3: RR and RR-NRF track each other closely.
#[test]
fn rr_and_rr_nrf_are_close() {
    let bags = 25;
    let rr = mean(&scenario(
        25_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::Rr,
        bags,
    ));
    let nrf = mean(&scenario(
        25_000.0,
        Intensity::Low,
        Availability::HIGH,
        PolicyKind::RrNrf,
        bags,
    ));
    let rel = (rr - nrf).abs() / rr;
    assert!(
        rel < 0.25,
        "RR {rr:.0} vs RR-NRF {nrf:.0}: {:.0}% apart",
        rel * 100.0
    );
}
