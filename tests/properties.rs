//! Property-based tests on the kernel data structures and the simulator's
//! global invariants.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_des::queue::{BTreeQueue, BinaryHeapQueue, CalendarQueue, PendingEvents};
use dgsched_des::stats::Welford;
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::{BagOfTasks, BotId, TaskId, TaskSpec, Workload};
use proptest::prelude::*;

/// Operations a queue fuzzer can apply.
#[derive(Debug, Clone)]
enum Op {
    Schedule(f64),
    Pop,
    CancelNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..1e6).prop_map(Op::Schedule),
        Just(Op::Pop),
        (0usize..64).prop_map(Op::CancelNth),
    ]
}

/// Replays ops against both queues and a naive sorted-vec reference,
/// asserting identical observable behaviour.
fn check_queues(ops: Vec<Op>) {
    let mut heap = BinaryHeapQueue::new();
    let mut cal = CalendarQueue::new();
    let mut btree = BTreeQueue::new();
    // Reference holds live entries only: (time, seq, payload).
    let mut reference: Vec<(f64, u64, u64)> = Vec::new();
    let mut heap_ids = Vec::new();
    let mut cal_ids = Vec::new();
    let mut btree_ids = Vec::new();
    let mut seq = 0u64;

    for op in ops {
        match op {
            Op::Schedule(t) => {
                heap_ids.push(heap.schedule(SimTime::new(t), seq));
                cal_ids.push(cal.schedule(SimTime::new(t), seq));
                btree_ids.push(btree.schedule(SimTime::new(t), seq));
                reference.push((t, seq, seq));
                seq += 1;
            }
            Op::Pop => {
                // Reference pop: earliest (time, seq).
                let expected = reference
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("no NaN"))
                    .map(|(i, e)| (i, e.0, e.2));
                let h = heap.pop();
                let c = cal.pop();
                let bt = btree.pop();
                match expected {
                    None => {
                        assert!(h.is_none(), "heap popped from empty");
                        assert!(c.is_none(), "calendar popped from empty");
                        assert!(bt.is_none(), "btree popped from empty");
                    }
                    Some((i, t, payload)) => {
                        let (ht, _, hp) = h.expect("heap must pop");
                        let (ct, _, cp) = c.expect("calendar must pop");
                        let (bt_t, _, bp) = bt.expect("btree must pop");
                        assert_eq!(ht.as_secs(), t);
                        assert_eq!(ct.as_secs(), t);
                        assert_eq!(bt_t.as_secs(), t);
                        assert_eq!(hp, payload);
                        assert_eq!(cp, payload);
                        assert_eq!(bp, payload);
                        reference.remove(i);
                    }
                }
            }
            Op::CancelNth(n) => {
                if reference.is_empty() {
                    // Exercise the dead-handle path instead: cancelling a
                    // consumed or already-cancelled id must return false.
                    if let (Some(&hid), Some(&cid), Some(&bid)) =
                        (heap_ids.first(), cal_ids.first(), btree_ids.first())
                    {
                        assert!(!heap.cancel(hid), "heap cancel of dead id");
                        assert!(!cal.cancel(cid), "calendar cancel of dead id");
                        assert!(!btree.cancel(bid), "btree cancel of dead id");
                    }
                    continue;
                }
                let idx = n % reference.len();
                let target_seq = reference[idx].1;
                let hid = heap_ids[target_seq as usize];
                let cid = cal_ids[target_seq as usize];
                let bid = btree_ids[target_seq as usize];
                assert!(heap.cancel(hid), "heap cancel of live id");
                assert!(cal.cancel(cid), "calendar cancel of live id");
                assert!(btree.cancel(bid), "btree cancel of live id");
                // Double cancel must be a no-op.
                assert!(!heap.cancel(hid));
                assert!(!cal.cancel(cid));
                assert!(!btree.cancel(bid));
                reference.remove(idx);
            }
        }
        assert_eq!(heap.len(), reference.len(), "heap live count");
        assert_eq!(cal.len(), reference.len(), "calendar live count");
        assert_eq!(btree.len(), reference.len(), "btree live count");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn queues_match_reference(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        check_queues(ops);
    }

    #[test]
    fn welford_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..200)) {
        let w: Welford = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() <= 1e-5 * (1.0 + var.abs()));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_merge_any_split(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        split in 0usize..100,
    ) {
        let k = split % xs.len();
        let seq: Welford = xs.iter().copied().collect();
        let mut a: Welford = xs[..k].iter().copied().collect();
        let b: Welford = xs[k..].iter().copied().collect();
        a.merge(&b);
        prop_assert!((a.mean() - seq.mean()).abs() < 1e-9 * (1.0 + seq.mean().abs()));
        prop_assert!((a.variance() - seq.variance()).abs() < 1e-7 * (1.0 + seq.variance()));
    }

    /// The simulator conserves work and replicas for arbitrary small
    /// workloads on a failing grid.
    #[test]
    fn simulator_work_conservation(
        seed in 0u64..1000,
        n_bags in 1usize..5,
        tasks_per_bag in 1usize..6,
        work in 100.0f64..20_000.0,
        policy_idx in 0usize..5,
    ) {
        let grid_cfg = GridConfig {
            total_power: 60.0,
            heterogeneity: Heterogeneity::UniformRange { lo: 4.0, hi: 16.0 },
            availability: Availability::MED,
            checkpoint: CheckpointConfig::default(),
            outages: None,
        };
        let mut grid_rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let grid = grid_cfg.build(&mut grid_rng);
        let bags: Vec<BagOfTasks> = (0..n_bags)
            .map(|i| BagOfTasks {
                id: BotId(i as u32),
                arrival: SimTime::new(i as f64 * 500.0),
                tasks: (0..tasks_per_bag)
                    .map(|j| TaskSpec { id: TaskId(j as u32), work })
                    .collect(),
                granularity: work,
            })
            .collect();
        let workload = Workload { bags, lambda: 1.0, label: "prop".into() };
        let policy = PolicyKind::all()[policy_idx];
        let r = simulate(&grid, &workload, policy, &SimConfig::with_seed(seed));
        prop_assert_eq!(r.completed, n_bags, "all bags complete");
        prop_assert!(!r.saturated);
        let total_work = (n_bags * tasks_per_bag) as f64 * work;
        prop_assert!((r.counters.useful_work - total_work).abs() < 1e-6);
        prop_assert_eq!(
            r.counters.replicas_launched,
            (n_bags * tasks_per_bag) as u64
                + r.counters.replicas_killed_failure
                + r.counters.replicas_killed_sibling
        );
        prop_assert!(r.counters.killed_occupancy <= r.counters.busy_time + 1e-9);
        // Turnarounds decompose.
        for b in &r.bags {
            prop_assert!((b.turnaround - (b.waiting + b.makespan)).abs() < 1e-6);
            prop_assert!(b.waiting >= 0.0);
        }
    }
}
