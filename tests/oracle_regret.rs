//! Hindsight-oracle regret battery: for every policy × platform cell the
//! oracle turnaround must lower-bound the best observed policy on the
//! same realized trace (so regret ≥ 0 holds cell-by-cell, not just on
//! average), and the search itself must be byte-identical across pool
//! widths and across resumed restarts — the regret numbers are published
//! artifacts and inherit the repo's determinism contract.

use dgsched_core::experiment::{
    oracle_replication, run_matrix_regret, run_matrix_regret_journaled, OracleConfig, Scenario,
    WorkloadKind,
};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::SimConfig;
use dgsched_des::stats::StoppingRule;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use std::path::PathBuf;

fn small_grid(heterogeneity: Heterogeneity, availability: Availability) -> GridConfig {
    GridConfig {
        total_power: 80.0,
        heterogeneity,
        availability,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    }
}

/// Hom/Het × High/Low — the paper's platform axis.
fn platforms() -> Vec<(&'static str, GridConfig)> {
    vec![
        (
            "Hom-High",
            small_grid(Heterogeneity::HOM, Availability::HIGH),
        ),
        ("Hom-Low", small_grid(Heterogeneity::HOM, Availability::LOW)),
        (
            "Het-High",
            small_grid(Heterogeneity::HET, Availability::HIGH),
        ),
        ("Het-Low", small_grid(Heterogeneity::HET, Availability::LOW)),
    ]
}

fn scenario(policy: PolicyKind, name: &str, grid: GridConfig) -> Scenario {
    Scenario {
        name: format!("oracle {name} {policy}"),
        grid,
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType {
                granularity: 2_000.0,
                app_size: 16_000.0,
                jitter: 0.5,
            },
            intensity: Intensity::Medium,
            count: 5,
        }),
        policy,
        sim: SimConfig::default(),
    }
}

fn two_reps() -> StoppingRule {
    StoppingRule {
        min_replications: 2,
        max_replications: 2,
        ..Default::default()
    }
}

fn tiny_oracle() -> OracleConfig {
    OracleConfig {
        restarts: 4,
        iters: 40,
        seed: 7,
        replications: 2,
    }
}

fn json(v: &impl serde::Serialize) -> String {
    serde_json::to_string(v).unwrap()
}

/// Per-replication, per-platform: the oracle never loses to any of the
/// seven policies replayed on the same trace — the ≤ that makes regret
/// non-negative by construction.
#[test]
fn oracle_bounds_every_policy_on_every_platform() {
    let ocfg = tiny_oracle();
    for (pname, grid) in platforms() {
        for rep in 0..ocfg.replications {
            let orep = oracle_replication(&scenario(PolicyKind::Rr, pname, grid), 2008, rep, &ocfg);
            assert_eq!(
                orep.policy_turnarounds.len(),
                7,
                "{pname}: all seven policies replayed"
            );
            assert!(orep.oracle_turnaround > 0.0, "{pname} rep {rep}");
            for (policy, t) in &orep.policy_turnarounds {
                if let Some(t) = t {
                    assert!(
                        orep.oracle_turnaround <= *t,
                        "{pname} rep {rep}: oracle {} beaten by {policy} {t}",
                        orep.oracle_turnaround
                    );
                }
            }
        }
    }
}

/// The full 7-policy × 4-platform matrix: every cell reports a regret
/// section with mean regret ≥ 0, and cells sharing a platform share the
/// oracle (the environment is policy-independent, so the search runs once
/// per platform).
#[test]
fn regret_is_nonnegative_across_the_full_matrix() {
    let scenarios: Vec<Scenario> = platforms()
        .into_iter()
        .flat_map(|(pname, grid)| {
            PolicyKind::all_with_baselines()
                .into_iter()
                .map(move |policy| scenario(policy, pname, grid))
        })
        .collect();
    assert_eq!(scenarios.len(), 28);
    let results = run_matrix_regret(&scenarios, 2008, &two_reps(), &tiny_oracle());
    for r in &results {
        let reg = r
            .regret
            .as_ref()
            .unwrap_or_else(|| panic!("{}: regret section missing", r.name));
        assert!(
            reg.regret.mean >= 0.0,
            "{}: mean regret {} < 0",
            r.name,
            reg.regret.mean
        );
        assert!(reg.oracle_turnaround.mean > 0.0, "{}", r.name);
        assert_eq!(reg.replications, 2, "{}", r.name);
        assert!(reg.measured_replications <= reg.replications, "{}", r.name);
        assert!(reg.search_evaluations > 0, "{}", r.name);
    }
    // Policies on the same platform share one oracle computation.
    for chunk in results.chunks(7) {
        let first = json(&chunk[0].regret.as_ref().unwrap().oracle_turnaround);
        for r in &chunk[1..] {
            assert_eq!(
                first,
                json(&r.regret.as_ref().unwrap().oracle_turnaround),
                "{}: oracle differs within its platform group",
                r.name
            );
        }
    }
}

/// The whole regret matrix — baseline sweep plus oracle search — is
/// byte-identical at pool widths 1 and 4.
#[test]
fn regret_matrix_is_byte_identical_across_pool_widths() {
    let scenarios: Vec<Scenario> = PolicyKind::all_with_baselines()
        .into_iter()
        .map(|p| {
            scenario(
                p,
                "Het-Low",
                small_grid(Heterogeneity::HET, Availability::LOW),
            )
        })
        .collect();
    let rule = two_reps();
    let ocfg = tiny_oracle();
    let w1 = rayon::with_num_threads(1, || run_matrix_regret(&scenarios, 2008, &rule, &ocfg));
    let w4 = rayon::with_num_threads(4, || run_matrix_regret(&scenarios, 2008, &rule, &ocfg));
    assert_eq!(
        json(&w1),
        json(&w4),
        "oracle search must not depend on pool width"
    );
}

fn journal_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgsched-oracle-regret-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}.jsonl", std::process::id()))
}

/// A search interrupted mid-restart and resumed — even at a different
/// pool width — folds to the same bytes as an uninterrupted run.
#[test]
fn resumed_restarts_are_byte_identical_even_across_widths() {
    let scenarios = vec![scenario(
        PolicyKind::Sbf,
        "Hom-High",
        small_grid(Heterogeneity::HOM, Availability::HIGH),
    )];
    let rule = two_reps();
    let ocfg = tiny_oracle();
    let straight = rayon::with_num_threads(4, || run_matrix_regret(&scenarios, 2008, &rule, &ocfg));

    // Full journaled run at width 4, then crash-truncate the journal to
    // the header plus three restart records.
    let path = journal_path("resume");
    std::fs::remove_file(&path).ok();
    let (full, stats) = rayon::with_num_threads(4, || {
        run_matrix_regret_journaled(&scenarios, 2008, &rule, &ocfg, &path, false)
    })
    .unwrap();
    assert_eq!(
        stats.restarts_written,
        u64::from(ocfg.restarts) * ocfg.replications
    );
    assert_eq!(json(&full), json(&straight), "journaling is passive");

    let text = std::fs::read_to_string(&path).unwrap();
    let kept: Vec<&str> = text.lines().take(4).collect();
    std::fs::write(&path, kept.join("\n") + "\n").unwrap();

    // Resume at width 1: three restarts replay, the rest recompute.
    let (resumed, stats) = rayon::with_num_threads(1, || {
        run_matrix_regret_journaled(&scenarios, 2008, &rule, &ocfg, &path, true)
    })
    .unwrap();
    assert_eq!(stats.resumes, 1);
    assert_eq!(stats.restarts_replayed, 3);
    assert_eq!(
        stats.restarts_written,
        u64::from(ocfg.restarts) * ocfg.replications - 3
    );
    assert_eq!(
        json(&resumed),
        json(&straight),
        "resumed search must be byte-identical to an uninterrupted one"
    );
    std::fs::remove_file(&path).ok();
}

/// A torn final record — half a JSON line, as a crash mid-append leaves —
/// is dropped on resume and the run still converges to the same bytes.
#[test]
fn torn_journal_tail_is_recovered() {
    let scenarios = vec![scenario(
        PolicyKind::Random,
        "Hom-Low",
        small_grid(Heterogeneity::HOM, Availability::LOW),
    )];
    let rule = two_reps();
    let ocfg = tiny_oracle();
    let straight = run_matrix_regret(&scenarios, 2008, &rule, &ocfg);

    let path = journal_path("torn");
    std::fs::remove_file(&path).ok();
    let (_, _) = run_matrix_regret_journaled(&scenarios, 2008, &rule, &ocfg, &path, false).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let truncated = &text[..text.len() - text.len() / 3];
    std::fs::write(&path, truncated).unwrap();

    let (resumed, stats) =
        run_matrix_regret_journaled(&scenarios, 2008, &rule, &ocfg, &path, true).unwrap();
    assert_eq!(stats.torn_tails, 1);
    assert_eq!(json(&resumed), json(&straight));
    std::fs::remove_file(&path).ok();
}
