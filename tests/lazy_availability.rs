//! Equivalence of the lazy-availability mode (`SimConfig::lazy_availability`):
//! eliding fail/repair events for idle machines must not change anything a
//! scheduler or a metrics consumer can see. The lazy run reconstructs idle
//! machines' renewal trajectories from the same per-machine RNG streams, so
//! every [`RunResult`] field except the processed-event count — per-bag
//! metrics, per-machine failure/busy totals, counters, end time — must equal
//! the eager run's exactly. Only the *timing* of fail/repair trace records
//! may differ (idle-window failures surface when observed, not when they
//! happen), which is why the comparison here is on results, while the
//! indexed-vs-reference comparison (both lazy) is still on full traces.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{
    simulate, simulate_observed, simulate_observed_reference, MachineOrder, RunResult, SimConfig,
    TraceRecorder,
};
use dgsched_des::dist::DistConfig;
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, Grid, GridConfig, Heterogeneity, OutageConfig};
use dgsched_workload::{BagOfTasks, BotId, TaskId, TaskSpec, Workload};
use rand::SeedableRng;

fn grid(het: Heterogeneity, avail: Availability, outages: Option<OutageConfig>) -> Grid {
    let cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: het,
        availability: avail,
        checkpoint: CheckpointConfig::default(),
        outages,
    };
    cfg.build(&mut rand::rngs::StdRng::seed_from_u64(42))
}

/// Same mixed workload as the index-equivalence suite: replication, restarts
/// and sibling kills all occur under every policy.
fn workload() -> Workload {
    let mk = |id: u32, at: f64, works: &[f64]| BagOfTasks {
        id: BotId(id),
        arrival: SimTime::new(at),
        tasks: works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec {
                id: TaskId(i as u32),
                work: w,
            })
            .collect(),
        granularity: 10_000.0,
    };
    Workload {
        bags: vec![
            mk(0, 0.0, &[12_000.0, 8_000.0, 8_000.0, 15_000.0]),
            mk(1, 500.0, &[20_000.0, 5_000.0, 9_000.0]),
            mk(2, 1_500.0, &[30_000.0]),
            mk(3, 2_000.0, &[7_000.0, 7_000.0, 7_000.0, 7_000.0, 7_000.0]),
            mk(4, 4_000.0, &[18_000.0, 2_500.0]),
        ],
        lambda: 1e-3,
        label: "lazy-equiv".into(),
    }
}

fn lazy_cfg(seed: u64) -> SimConfig {
    SimConfig {
        lazy_availability: true,
        ..SimConfig::with_seed(seed)
    }
}

/// Everything in a [`RunResult`] except the processed-event count, which is
/// the one field laziness is *supposed* to shrink.
fn comparable(r: &RunResult) -> serde_json::Value {
    let json = serde_json::to_string(r).expect("RunResult serialises");
    let v: serde_json::Value = serde_json::from_str(&json).expect("round-trips");
    let serde_json::Value::Object(fields) = v else {
        panic!("RunResult serialises to an object");
    };
    serde_json::Value::Object(fields.into_iter().filter(|(k, _)| k != "events").collect())
}

#[test]
fn lazy_matches_eager_results_for_every_policy() {
    for avail in [Availability::MED, Availability::LOW] {
        let g = grid(Heterogeneity::HET, avail, None);
        for kind in PolicyKind::all_with_baselines() {
            let eager = simulate(&g, &workload(), kind, &SimConfig::with_seed(2008));
            let lazy = simulate(&g, &workload(), kind, &lazy_cfg(2008));
            assert_eq!(
                comparable(&eager),
                comparable(&lazy),
                "lazy results diverged: {kind:?} at {avail:?}"
            );
        }
    }
}

#[test]
fn lazy_matches_eager_results_under_outages() {
    // Correlated outages consume a shared RNG stream whose draws depend on
    // which machines are up — the outage pre-pass must keep that exact.
    let outages = Some(OutageConfig {
        mtbo: 5_000.0,
        duration: DistConfig::Constant { value: 600.0 },
        fraction: 0.5,
    });
    let g = grid(Heterogeneity::HOM, Availability::MED, outages);
    for kind in [PolicyKind::FcfsShare, PolicyKind::FcfsExcl, PolicyKind::Rr] {
        let eager = simulate(&g, &workload(), kind, &SimConfig::with_seed(77));
        let lazy = simulate(&g, &workload(), kind, &lazy_cfg(77));
        assert_eq!(
            comparable(&eager),
            comparable(&lazy),
            "lazy results diverged under outages: {kind:?}"
        );
    }
}

#[test]
fn lazy_indexed_matches_lazy_reference_traces() {
    // Within lazy mode the indexed and full-scan schedulers must still be
    // byte-identical — including the observation-time fail/repair records.
    let wl = workload();
    for avail in [Availability::MED, Availability::LOW] {
        let g = grid(Heterogeneity::HET, avail, None);
        for kind in PolicyKind::all_with_baselines() {
            let cfg = lazy_cfg(2008);
            let mut a = TraceRecorder::new();
            let ra = simulate_observed(&g, &wl, kind.create_seeded(cfg.seed), &cfg, &mut a);
            let mut b = TraceRecorder::new();
            let rb =
                simulate_observed_reference(&g, &wl, kind.create_seeded(cfg.seed), &cfg, &mut b);
            assert!(a.is_time_ordered());
            assert_eq!(ra.events, rb.events, "event counts diverged: {kind:?}");
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "lazy trace diverged from reference: {kind:?} at {avail:?}"
            );
        }
    }
}

#[test]
fn lazy_elides_events_on_a_mostly_idle_grid() {
    // One tiny bag on a large low-availability grid: almost every machine
    // is idle almost always, so the lazy run must process far fewer events.
    let cfg = GridConfig {
        total_power: 600.0, // 60 machines, at most 2 ever busy
        heterogeneity: Heterogeneity::Homogeneous { power: 10.0 },
        availability: Availability::LOW,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    let g = cfg.build(&mut rand::rngs::StdRng::seed_from_u64(42));
    let wl = Workload {
        bags: vec![BagOfTasks {
            id: BotId(0),
            arrival: SimTime::new(0.0),
            tasks: vec![TaskSpec {
                id: TaskId(0),
                work: 20_000.0,
            }],
            granularity: 20_000.0,
        }],
        lambda: 1.0,
        label: "idle".into(),
    };
    let kind = PolicyKind::FcfsShare;
    let eager = simulate(&g, &wl, kind, &SimConfig::with_seed(5));
    let lazy = simulate(&g, &wl, kind, &lazy_cfg(5));
    assert_eq!(comparable(&eager), comparable(&lazy));
    assert!(
        lazy.events < eager.events,
        "laziness must shrink the event count ({} vs {})",
        lazy.events,
        eager.events
    );
}

#[test]
fn lazy_flag_is_ignored_where_observation_order_matters() {
    // FewestFailuresFirst consumes failure observations the moment they
    // happen; the flag must fall back to eager behaviour, trace included.
    let wl = workload();
    let g = grid(Heterogeneity::HET, Availability::LOW, None);
    let mut eager_cfg = SimConfig::with_seed(2008);
    eager_cfg.machine_order = MachineOrder::FewestFailuresFirst;
    let mut flagged_cfg = eager_cfg;
    flagged_cfg.lazy_availability = true;
    let kind = PolicyKind::LongIdle;
    let mut a = TraceRecorder::new();
    simulate_observed(&g, &wl, kind.create_seeded(2008), &eager_cfg, &mut a);
    let mut b = TraceRecorder::new();
    simulate_observed(&g, &wl, kind.create_seeded(2008), &flagged_cfg, &mut b);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "flag must be inert under FewestFailuresFirst"
    );
}
