//! Cross-validation of the scheduler's incremental indices: for every
//! policy, replaying a scenario with the indexed scheduler and with the
//! naive full-scan reference (`simulate_observed_reference`) must produce
//! byte-identical event traces. The reference mode recomputes every
//! free-machine list, dispatchability check, replication candidate,
//! pending wait and remaining-work sum from first principles, so any drift
//! in the index bookkeeping shows up as a trace mismatch here.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{
    simulate_observed, simulate_observed_reference, MachineOrder, SimConfig, TraceRecorder,
};
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, Grid, GridConfig, Heterogeneity};
use dgsched_workload::{BagOfTasks, BotId, TaskId, TaskSpec, Workload};
use rand::SeedableRng;

fn grid(het: Heterogeneity, avail: Availability) -> Grid {
    let cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: het,
        availability: avail,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    cfg.build(&mut rand::rngs::StdRng::seed_from_u64(42))
}

/// A small mixed workload with equal-work ties, a restart-prone long task
/// and staggered arrivals, so every policy exercises replication, restarts
/// and sibling kills.
fn workload() -> Workload {
    let mk = |id: u32, at: f64, works: &[f64]| BagOfTasks {
        id: BotId(id),
        arrival: SimTime::new(at),
        tasks: works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec {
                id: TaskId(i as u32),
                work: w,
            })
            .collect(),
        granularity: 10_000.0,
    };
    Workload {
        bags: vec![
            mk(0, 0.0, &[12_000.0, 8_000.0, 8_000.0, 15_000.0]),
            mk(1, 500.0, &[20_000.0, 5_000.0, 9_000.0]),
            mk(2, 1_500.0, &[30_000.0]),
            mk(3, 2_000.0, &[7_000.0, 7_000.0, 7_000.0, 7_000.0, 7_000.0]),
            mk(4, 4_000.0, &[18_000.0, 2_500.0]),
        ],
        lambda: 1e-3,
        label: "equiv".into(),
    }
}

/// Runs the scenario in one mode and returns the serialised trace.
fn run(indexed: bool, grid: &Grid, kind: PolicyKind, cfg: &SimConfig) -> String {
    let wl = workload();
    let mut trace = TraceRecorder::new();
    let policy = kind.create_seeded(cfg.seed);
    let r = if indexed {
        simulate_observed(grid, &wl, policy, cfg, &mut trace)
    } else {
        simulate_observed_reference(grid, &wl, policy, cfg, &mut trace)
    };
    assert!(trace.is_time_ordered());
    assert!(r.events > 0);
    serde_json::to_string(&trace).expect("trace serialises")
}

#[test]
fn all_policies_match_reference_across_grids() {
    let cfg = SimConfig::with_seed(2008);
    for het in [Heterogeneity::HOM, Heterogeneity::HET] {
        for avail in [Availability::HIGH, Availability::LOW] {
            let g = grid(het, avail);
            for kind in PolicyKind::all_with_baselines() {
                let indexed = run(true, &g, kind, &cfg);
                let reference = run(false, &g, kind, &cfg);
                assert_eq!(
                    indexed, reference,
                    "trace diverged: {kind:?} on {het:?}/{avail:?}"
                );
            }
        }
    }
}

#[test]
fn machine_orders_match_reference() {
    let g = grid(Heterogeneity::HET, Availability::LOW);
    for order in [
        MachineOrder::Arbitrary,
        MachineOrder::FastestFirst,
        MachineOrder::FewestFailuresFirst,
    ] {
        let mut cfg = SimConfig::with_seed(2008);
        cfg.machine_order = order;
        for kind in [PolicyKind::LongIdle, PolicyKind::FcfsShare] {
            let indexed = run(true, &g, kind, &cfg);
            let reference = run(false, &g, kind, &cfg);
            assert_eq!(
                indexed, reference,
                "trace diverged: {kind:?} with {order:?}"
            );
        }
    }
}

/// FCFS-Excl on a 5000-machine grid: with its unlimited replication
/// threshold every free machine re-replicates the few running tasks, so
/// the run lives almost entirely in the replica-churn regime where the
/// min-replica-count bucket queue does the candidate selection. The naive
/// reference rescans all 5000 machines per round, which is why this case
/// only runs under `--release`.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "reference mode is O(machines) per round; release-only"
)]
fn fcfs_excl_5k_machines_matches_reference() {
    let gc = GridConfig {
        total_power: 50_000.0,
        heterogeneity: Heterogeneity::HOM,
        availability: Availability::HIGH,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    let g = gc.build(&mut rand::rngs::StdRng::seed_from_u64(42));
    assert_eq!(g.len(), 5_000);
    let cfg = SimConfig::with_seed(2008);
    let indexed = run(true, &g, PolicyKind::FcfsExcl, &cfg);
    let reference = run(false, &g, PolicyKind::FcfsExcl, &cfg);
    assert_eq!(indexed, reference);
}

#[test]
fn dynamic_replication_matches_reference() {
    // The failure-adaptive threshold changes mid-run; both modes must
    // agree on when.
    let g = grid(Heterogeneity::HOM, Availability::LOW);
    let mut cfg = SimConfig::with_seed(2008);
    cfg.dynamic_replication = Some(dgsched_core::sim::DynamicReplication {
        calm: 1,
        stormy: 3,
        rate_cutoff: 1.0e-4,
    });
    let indexed = run(true, &g, PolicyKind::Rr, &cfg);
    let reference = run(false, &g, PolicyKind::Rr, &cfg);
    assert_eq!(indexed, reference);
}
