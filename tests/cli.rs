//! Black-box tests of the `dgsched` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dgsched")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgsched-cli-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn demo_emits_parseable_scenario() {
    let out = Command::new(bin()).arg("demo").output().expect("run demo");
    assert!(out.status.success());
    let json: serde_json::Value = serde_json::from_slice(&out.stdout).expect("demo output is JSON");
    assert_eq!(json["policy"], "long-idle");
    assert!(json["grid"]["total_power"].as_f64().unwrap() > 0.0);
}

#[test]
fn run_executes_demo_scenario() {
    let demo = Command::new(bin()).arg("demo").output().expect("demo");
    let path = tmp("scenario.json");
    std::fs::write(&path, &demo.stdout).expect("write scenario");
    let out = Command::new(bin())
        .args([
            "run",
            path.to_str().unwrap(),
            "--min-reps",
            "2",
            "--max-reps",
            "2",
            "--seed",
            "5",
        ])
        .output()
        .expect("run scenario");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value = serde_json::from_slice(&out.stdout).expect("run output is JSON");
    assert_eq!(json["replications"], 2);
    assert!(json["turnaround"]["mean"].as_f64().unwrap() > 0.0);
    assert_eq!(json["saturated"], false);
}

#[test]
fn gen_and_summarize_workload() {
    let path = tmp("workload.json");
    let out = Command::new(bin())
        .args([
            "gen-workload",
            "-g",
            "5000",
            "-u",
            "low",
            "-n",
            "8",
            "-o",
            path.to_str().unwrap(),
            "--seed",
            "3",
        ])
        .output()
        .expect("gen-workload");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = Command::new(bin())
        .args(["summarize", path.to_str().unwrap()])
        .output()
        .expect("summarize");
    assert!(out.status.success());
    let json: serde_json::Value = serde_json::from_slice(&out.stdout).expect("summary is JSON");
    assert_eq!(json["bags"], 8);
    assert!(json["mean_task_work"].as_f64().unwrap() > 2000.0);
}

#[test]
fn trace_emits_parseable_trace_and_gantt() {
    let demo = Command::new(bin()).arg("demo").output().expect("demo");
    let scenario = tmp("trace-scenario.json");
    std::fs::write(&scenario, &demo.stdout).expect("write scenario");
    let trace_path = tmp("trace.json");
    let out = Command::new(bin())
        .args([
            "trace",
            scenario.to_str().unwrap(),
            "--out",
            trace_path.to_str().unwrap(),
            "--gantt",
        ])
        .output()
        .expect("trace");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let gantt = String::from_utf8_lossy(&out.stdout);
    assert!(gantt.contains("machines"), "gantt header missing: {gantt}");
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = trace["events"].as_array().expect("events array");
    assert!(events.len() > 100, "trace too small: {}", events.len());
    assert!(events.iter().any(|e| e["kind"] == "dispatch"));
    assert!(events.iter().any(|e| e["kind"] == "bag_complete"));
}

#[test]
fn oracle_reports_regret_section() {
    let demo = Command::new(bin()).arg("demo").output().expect("demo");
    let scenario = tmp("oracle-scenario.json");
    std::fs::write(&scenario, &demo.stdout).expect("write scenario");
    let out = Command::new(bin())
        .args([
            "oracle",
            scenario.to_str().unwrap(),
            "--min-reps",
            "1",
            "--max-reps",
            "1",
            "--oracle-reps",
            "1",
            "--restarts",
            "2",
            "--iters",
            "10",
        ])
        .output()
        .expect("oracle");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("oracle output is JSON");
    let regret = &json["regret"];
    assert!(
        regret["oracle_turnaround"]["mean"].as_f64().unwrap() > 0.0,
        "regret section missing: {}",
        serde_json::to_string(&json).unwrap()
    );
    assert!(regret["regret"]["mean"].as_f64().unwrap() >= 0.0);
    assert_eq!(regret["replications"], 1);

    // --resume without --journal and a zero-restart search are usage errors.
    let out = Command::new(bin())
        .args(["oracle", scenario.to_str().unwrap(), "--resume"])
        .output()
        .expect("oracle");
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["oracle", scenario.to_str().unwrap(), "--restarts", "0"])
        .output()
        .expect("oracle");
    assert!(!out.status.success());
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = Command::new(bin()).arg("frobnicate").output().expect("run");
    assert!(!out.status.success());
    let out = Command::new(bin()).output().expect("run");
    assert!(!out.status.success());
    let out = Command::new(bin())
        .args(["run", "/nonexistent/scenario.json"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}

#[test]
fn run_is_deterministic_across_invocations() {
    let demo = Command::new(bin()).arg("demo").output().expect("demo");
    let path = tmp("det-scenario.json");
    std::fs::write(&path, &demo.stdout).expect("write scenario");
    let run = || {
        let out = Command::new(bin())
            .args([
                "run",
                path.to_str().unwrap(),
                "--min-reps",
                "2",
                "--max-reps",
                "2",
            ])
            .output()
            .expect("run");
        assert!(out.status.success());
        String::from_utf8(out.stdout).expect("utf8")
    };
    assert_eq!(
        run(),
        run(),
        "same scenario + default seed must reproduce exactly"
    );
}

#[test]
fn run_with_journal_resumes_byte_identically() {
    let demo = Command::new(bin()).arg("demo").output().expect("demo");
    let scenario = tmp("journal-scenario.json");
    std::fs::write(&scenario, &demo.stdout).expect("write scenario");
    let journal = tmp("run.journal.jsonl");
    std::fs::remove_file(&journal).ok();
    let run = |resume: bool| {
        let mut args = vec![
            "run",
            scenario.to_str().unwrap(),
            "--min-reps",
            "2",
            "--max-reps",
            "2",
            "--journal",
            journal.to_str().unwrap(),
        ];
        if resume {
            args.push("--resume");
        }
        let out = Command::new(bin()).args(&args).output().expect("run");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8(out.stdout).expect("utf8"),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    };
    let (first, stderr1) = run(false);
    assert!(stderr1.contains("written"), "journal stats reported");
    // The journal now holds both replications; a resumed invocation must
    // replay them (recomputing nothing) and print the same bytes.
    let (second, stderr2) = run(true);
    assert_eq!(first, second, "resume changed the result JSON");
    assert!(
        stderr2.contains("2 replayed") && stderr2.contains("resumed"),
        "stderr: {stderr2}"
    );
    // --resume without --journal is a usage error.
    let out = Command::new(bin())
        .args(["run", scenario.to_str().unwrap(), "--resume"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    std::fs::remove_file(&journal).ok();
}
