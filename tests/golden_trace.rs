//! Golden-trace contract: a fixed scenario must produce a byte-identical
//! event trace across releases. This is the determinism promise made to
//! downstream users (saved workloads and seeds replay exactly); any
//! intentional change to scheduling semantics must update the fingerprint
//! below *and* the corresponding entry in EXPERIMENTS.md.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate_observed, MachineOrder, SimConfig, TraceRecorder};
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::{BagOfTasks, BotId, TaskId, TaskSpec, Workload};
use rand::SeedableRng;

/// FNV-1a over the serialised trace — cheap, stable, dependency-free.
fn fingerprint(trace: &TraceRecorder) -> u64 {
    let json = serde_json::to_string(trace).expect("trace serialises");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn golden_run_with(het: Heterogeneity, order: MachineOrder) -> TraceRecorder {
    let grid_cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: het,
        availability: Availability::MED,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    let grid = grid_cfg.build(&mut rand::rngs::StdRng::seed_from_u64(7));
    let mk = |id: u32, at: f64, works: &[f64]| BagOfTasks {
        id: BotId(id),
        arrival: SimTime::new(at),
        tasks: works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec {
                id: TaskId(i as u32),
                work: w,
            })
            .collect(),
        granularity: 10_000.0,
    };
    let workload = Workload {
        bags: vec![
            mk(0, 0.0, &[12_000.0, 8_000.0, 15_000.0]),
            mk(1, 1_000.0, &[20_000.0, 5_000.0]),
            mk(2, 2_500.0, &[30_000.0]),
        ],
        lambda: 1e-3,
        label: "golden".into(),
    };
    let mut trace = TraceRecorder::new();
    let mut cfg = SimConfig::with_seed(2008);
    cfg.machine_order = order;
    let r = simulate_observed(
        &grid,
        &workload,
        PolicyKind::LongIdle.create_seeded(2008),
        &cfg,
        &mut trace,
    );
    assert_eq!(r.completed, 3);
    trace
}

fn golden_run() -> TraceRecorder {
    golden_run_with(
        Heterogeneity::Homogeneous { power: 10.0 },
        MachineOrder::Arbitrary,
    )
}

#[test]
fn golden_trace_fingerprint_is_stable() {
    let trace = golden_run();
    assert!(trace.is_time_ordered());
    let fp = fingerprint(&trace);
    // Two runs in-process must agree bit-for-bit...
    assert_eq!(fp, fingerprint(&golden_run()));
    // ...and with the recorded release fingerprint. If this fails after an
    // *intentional* semantic change, re-record with:
    //   cargo test -p dgsched-core --test golden_trace -- --nocapture
    // and update both constants below and EXPERIMENTS.md.
    // Re-recorded when the workspace moved to the vendored offline RNG
    // stack (xoshiro256** StdRng + inverse-transform samplers), which is
    // deterministic but not bit-compatible with upstream rand's ChaCha12.
    let expected_events = 76;
    let expected_fp: u64 = 0x4502_f09c_5e6e_0475;
    eprintln!(
        "golden trace: {} events, fingerprint {:#018x}",
        trace.len(),
        fp
    );
    assert_eq!(trace.len(), expected_events, "event count drifted");
    assert_eq!(fp, expected_fp, "trace fingerprint drifted");
}

/// Same contract for the non-default machine orders, which exercise the
/// rank-permutation and failure-bucket paths of the free-machine index.
/// `FastestFirst` runs on a heterogeneous grid so power ranks are
/// meaningful (and its total-order tie-break on equal powers is covered by
/// the Hom golden run above staying stable under the index).
#[test]
fn golden_trace_fastest_first_het() {
    let trace = golden_run_with(Heterogeneity::HET, MachineOrder::FastestFirst);
    assert!(trace.is_time_ordered());
    let fp = fingerprint(&trace);
    let expected_events = 52;
    let expected_fp: u64 = 0xcea8_d103_7f5a_c3fc;
    eprintln!(
        "golden FastestFirst/Het: {} events, fingerprint {:#018x}",
        trace.len(),
        fp
    );
    assert_eq!(trace.len(), expected_events, "event count drifted");
    assert_eq!(fp, expected_fp, "trace fingerprint drifted");
}

#[test]
fn golden_trace_fewest_failures_first() {
    let trace = golden_run_with(
        Heterogeneity::Homogeneous { power: 10.0 },
        MachineOrder::FewestFailuresFirst,
    );
    assert!(trace.is_time_ordered());
    let fp = fingerprint(&trace);
    let expected_events = 70;
    let expected_fp: u64 = 0x5fa0_800b_5715_4059;
    eprintln!(
        "golden FewestFailuresFirst: {} events, fingerprint {:#018x}",
        trace.len(),
        fp
    );
    assert_eq!(trace.len(), expected_events, "event count drifted");
    assert_eq!(fp, expected_fp, "trace fingerprint drifted");
}
