//! Golden-trace contract: a fixed scenario must produce a byte-identical
//! event trace across releases. This is the determinism promise made to
//! downstream users (saved workloads and seeds replay exactly); any
//! intentional change to scheduling semantics must update the fingerprint
//! below *and* the corresponding entry in EXPERIMENTS.md.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate_observed, SimConfig, TraceRecorder};
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::{BagOfTasks, BotId, TaskId, TaskSpec, Workload};
use rand::SeedableRng;

/// FNV-1a over the serialised trace — cheap, stable, dependency-free.
fn fingerprint(trace: &TraceRecorder) -> u64 {
    let json = serde_json::to_string(trace).expect("trace serialises");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in json.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn golden_run() -> TraceRecorder {
    let grid_cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: Heterogeneity::Homogeneous { power: 10.0 },
        availability: Availability::MED,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    let grid = grid_cfg.build(&mut rand::rngs::StdRng::seed_from_u64(7));
    let mk = |id: u32, at: f64, works: &[f64]| BagOfTasks {
        id: BotId(id),
        arrival: SimTime::new(at),
        tasks: works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec { id: TaskId(i as u32), work: w })
            .collect(),
        granularity: 10_000.0,
    };
    let workload = Workload {
        bags: vec![
            mk(0, 0.0, &[12_000.0, 8_000.0, 15_000.0]),
            mk(1, 1_000.0, &[20_000.0, 5_000.0]),
            mk(2, 2_500.0, &[30_000.0]),
        ],
        lambda: 1e-3,
        label: "golden".into(),
    };
    let mut trace = TraceRecorder::new();
    let cfg = SimConfig::with_seed(2008);
    let r = simulate_observed(
        &grid,
        &workload,
        PolicyKind::LongIdle.create_seeded(2008),
        &cfg,
        &mut trace,
    );
    assert_eq!(r.completed, 3);
    trace
}

#[test]
fn golden_trace_fingerprint_is_stable() {
    let trace = golden_run();
    assert!(trace.is_time_ordered());
    let fp = fingerprint(&trace);
    // Two runs in-process must agree bit-for-bit...
    assert_eq!(fp, fingerprint(&golden_run()));
    // ...and with the recorded release fingerprint. If this fails after an
    // *intentional* semantic change, re-record with:
    //   cargo test -p dgsched-core --test golden_trace -- --nocapture
    // and update both constants below and EXPERIMENTS.md.
    let expected_events = 52;
    let expected_fp: u64 = 0x3d01_7e4f_fec8_1066;
    eprintln!("golden trace: {} events, fingerprint {:#018x}", trace.len(), fp);
    assert_eq!(trace.len(), expected_events, "event count drifted");
    assert_eq!(fp, expected_fp, "trace fingerprint drifted");
}
