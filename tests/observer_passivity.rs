//! The telemetry subsystem must be *passive*: attaching any tracer — the
//! unbounded recorder, the fixed-capacity ring, or the full metrics
//! registry — must not perturb a single scheduling decision. For every
//! policy on every grid class, the instrumented run's `RunResult` must be
//! byte-identical to the plain (NullObserver) run, the ring's surviving
//! window must be exactly the recorder's tail, and both trace codecs must
//! round-trip the real event stream losslessly with truncation reported.

use dgsched_core::experiment::{run_scenario, Scenario, WorkloadKind};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{
    simulate, simulate_instrumented, simulate_observed, SimConfig, TraceRecorder, TraceRing,
};
use dgsched_des::stats::StoppingRule;
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, CheckpointConfig, Grid, GridConfig, Heterogeneity};
use dgsched_obs::{decode_binary, encode_binary, read_jsonl, write_jsonl};
use dgsched_workload::{
    BagOfTasks, BotId, BotType, Intensity, TaskId, TaskSpec, Workload, WorkloadSpec,
};
use rand::SeedableRng;

fn grid(het: Heterogeneity, avail: Availability) -> Grid {
    let cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: het,
        availability: avail,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    };
    cfg.build(&mut rand::rngs::StdRng::seed_from_u64(42))
}

/// Same mixed workload as the index-equivalence suite: equal-work ties, a
/// restart-prone long task and staggered arrivals, so every policy
/// exercises replication, restarts and sibling kills.
fn workload() -> Workload {
    let mk = |id: u32, at: f64, works: &[f64]| BagOfTasks {
        id: BotId(id),
        arrival: SimTime::new(at),
        tasks: works
            .iter()
            .enumerate()
            .map(|(i, &w)| TaskSpec {
                id: TaskId(i as u32),
                work: w,
            })
            .collect(),
        granularity: 10_000.0,
    };
    Workload {
        bags: vec![
            mk(0, 0.0, &[12_000.0, 8_000.0, 8_000.0, 15_000.0]),
            mk(1, 500.0, &[20_000.0, 5_000.0, 9_000.0]),
            mk(2, 1_500.0, &[30_000.0]),
            mk(3, 2_000.0, &[7_000.0, 7_000.0, 7_000.0, 7_000.0, 7_000.0]),
            mk(4, 4_000.0, &[18_000.0, 2_500.0]),
        ],
        lambda: 1e-3,
        label: "passivity".into(),
    }
}

fn result_json(r: &dgsched_core::sim::RunResult) -> String {
    serde_json::to_string(r).expect("result serialises")
}

/// Attaching the recorder, the ring, or the metrics registry never changes
/// the `RunResult`, for all 7 policies across Hom/Het × High/Low grids.
#[test]
fn tracers_never_perturb_the_run() {
    let cfg = SimConfig::with_seed(2008);
    let wl = workload();
    for het in [Heterogeneity::HOM, Heterogeneity::HET] {
        for avail in [Availability::HIGH, Availability::LOW] {
            let g = grid(het, avail);
            for kind in PolicyKind::all_with_baselines() {
                let label = format!("{kind:?} on {het:?}/{avail:?}");
                let plain = result_json(&simulate(&g, &wl, kind, &cfg));

                // Observed run (tracer only, no metrics registry).
                let mut observed = TraceRecorder::new();
                let r =
                    simulate_observed(&g, &wl, kind.create_seeded(cfg.seed), &cfg, &mut observed);
                assert_eq!(result_json(&r), plain, "observed diverged: {label}");

                // Instrumented run: recorder + metrics registry.
                let mut rec = TraceRecorder::new();
                let (r, report) =
                    simulate_instrumented(&g, &wl, kind.create_seeded(cfg.seed), &cfg, &mut rec);
                assert_eq!(result_json(&r), plain, "instrumented diverged: {label}");
                assert!(rec.is_time_ordered(), "disordered trace: {label}");
                // The metrics registry rides the same seam, so the golden
                // trace the external tracer sees is unchanged too.
                assert_eq!(rec, observed, "trace diverged: {label}");
                assert_eq!(
                    report.metrics.counters["dispatches"] as usize,
                    rec.events
                        .iter()
                        .filter(|e| matches!(e, dgsched_obs::TraceEvent::Dispatch { .. }))
                        .count(),
                    "metrics disagree with the trace: {label}"
                );

                // Instrumented run with the ring tracer: same result, and
                // the surviving window is exactly the recorder's tail.
                let mut ring = TraceRing::new(64);
                let (r, _) =
                    simulate_instrumented(&g, &wl, kind.create_seeded(cfg.seed), &cfg, &mut ring);
                assert_eq!(result_json(&r), plain, "ring diverged: {label}");
                let expect_dropped = rec.len().saturating_sub(64) as u64;
                assert_eq!(ring.dropped(), expect_dropped, "drop count: {label}");
                let tail: Vec<_> = rec.events[rec.len() - ring.len()..].to_vec();
                assert_eq!(ring.events(), tail, "ring window is not the tail: {label}");
            }
        }
    }
}

/// Both trace codecs round-trip a *real* simulation trace — not a
/// hand-built sample — and a truncated ring export says so in both
/// formats.
#[test]
fn real_trace_round_trips_in_both_formats() {
    let cfg = SimConfig::with_seed(2008);
    let g = grid(Heterogeneity::HET, Availability::LOW);
    let wl = workload();

    let mut rec = TraceRecorder::new();
    let (_, _) = simulate_instrumented(
        &g,
        &wl,
        PolicyKind::LongIdle.create_seeded(cfg.seed),
        &cfg,
        &mut rec,
    );
    assert!(rec.len() > 100, "workload too small to exercise the codecs");

    let jsonl = write_jsonl(&rec.events, 0);
    let from_jsonl = read_jsonl(&jsonl).expect("jsonl decodes");
    assert_eq!(from_jsonl.events, rec.events);
    assert!(!from_jsonl.truncated());

    let bin = encode_binary(&rec.events, 0);
    let from_bin = decode_binary(&bin).expect("binary decodes");
    assert_eq!(from_bin.events, rec.events);
    assert!(!from_bin.truncated());

    // Same run through a too-small ring: the export must carry the drop
    // count in both formats — truncation is reported, never silent.
    let mut ring = TraceRing::new(128);
    let (_, _) = simulate_instrumented(
        &g,
        &wl,
        PolicyKind::LongIdle.create_seeded(cfg.seed),
        &cfg,
        &mut ring,
    );
    assert!(ring.truncated());
    let t_jsonl = read_jsonl(&write_jsonl(&ring.events(), ring.dropped())).unwrap();
    let t_bin = decode_binary(&encode_binary(&ring.events(), ring.dropped())).unwrap();
    assert_eq!(t_jsonl.dropped, ring.dropped());
    assert_eq!(t_bin.dropped, ring.dropped());
    assert!(t_jsonl.truncated() && t_bin.truncated());
    assert_eq!(t_jsonl.events, ring.events());
    assert_eq!(t_bin.events, ring.events());
}

/// `run_scenario` output is byte-for-byte invariant when instrumentation
/// is off, and turning `DGSCHED_TRACE` on only *appends* the metrics
/// snapshot — every pre-existing field keeps its exact value. Env-var
/// manipulation stays inside this one test to avoid cross-test races.
#[test]
fn run_matrix_json_is_invariant_without_the_toggle() {
    std::env::remove_var("DGSCHED_TRACE");
    let scenario = Scenario {
        name: "passivity".into(),
        grid: GridConfig {
            total_power: 40.0,
            heterogeneity: Heterogeneity::HOM,
            availability: Availability::HIGH,
            checkpoint: CheckpointConfig::default(),
            outages: None,
        },
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType::paper(25_000.0),
            intensity: Intensity::Low,
            count: 8,
        }),
        policy: PolicyKind::LongIdle,
        sim: SimConfig {
            warmup_bags: 1,
            ..SimConfig::default()
        },
    };
    let rule = StoppingRule {
        min_replications: 2,
        max_replications: 2,
        ..StoppingRule::default()
    };
    let off_a = serde_json::to_string(&run_scenario(&scenario, 7, &rule)).unwrap();
    let off_b = serde_json::to_string(&run_scenario(&scenario, 7, &rule)).unwrap();
    assert_eq!(
        off_a, off_b,
        "uninstrumented run_scenario is not deterministic"
    );
    assert!(
        !off_a.contains("\"metrics\""),
        "metrics must serialise to nothing when instrumentation is off"
    );

    std::env::set_var("DGSCHED_TRACE", "1");
    let mut on = run_scenario(&scenario, 7, &rule);
    std::env::remove_var("DGSCHED_TRACE");
    let snapshot = on
        .metrics
        .take()
        .expect("toggle attaches a metrics snapshot");
    assert!(snapshot.counters["dispatches"] > 0);
    assert_eq!(
        serde_json::to_string(&on).unwrap(),
        off_a,
        "instrumentation must only append, never change, the result"
    );

    // The "0"/"false"/"" spellings all mean off.
    for off in ["0", "false", ""] {
        std::env::set_var("DGSCHED_TRACE", off);
        assert!(
            !dgsched_core::experiment::obs_enabled(),
            "DGSCHED_TRACE={off:?}"
        );
    }
    std::env::remove_var("DGSCHED_TRACE");
}
