//! End-to-end output analysis: a single long run analysed with the
//! steady-state toolkit (MSER warm-up deletion, autocorrelation-sized batch
//! means) must agree with the independent-replications estimate — the
//! textbook cross-validation of the two estimation routes.

use dgsched_core::experiment::{run_scenario, Scenario, WorkloadKind};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_des::stats::{
    effective_sample_size, mser5, suggest_batch_size, BatchMeans, StoppingRule,
};
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

fn grid_cfg() -> GridConfig {
    GridConfig::paper(Heterogeneity::HOM, Availability::HIGH)
}

fn spec(count: usize) -> WorkloadSpec {
    WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::Low,
        count,
    }
}

#[test]
fn single_long_run_agrees_with_replications() {
    // Route 1: one long run, MSER truncation, batch means.
    let mut rng = rand::rngs::StdRng::seed_from_u64(50);
    let grid = grid_cfg().build(&mut rng);
    let workload = spec(600).generate(&grid_cfg(), &mut rng);
    let long = simulate(
        &grid,
        &workload,
        PolicyKind::FcfsShare,
        &SimConfig::with_seed(50),
    );
    assert!(!long.saturated);
    let series: Vec<f64> = long.bags.iter().map(|b| b.turnaround).collect();
    assert!(series.len() >= 500);

    let trunc = mser5(&series).expect("long series").truncate;
    let tail = &series[trunc..];
    let batch = suggest_batch_size(tail, 0.05).max(5);
    let mut bm = BatchMeans::new(batch, 0);
    for &x in tail {
        bm.push(x);
    }
    assert!(
        bm.batch_count() >= 5,
        "need enough batches (batch size {batch})"
    );
    let single_ci = bm.confidence_interval(0.95);

    // Route 2: independent replications through the experiment runner.
    let scenario = Scenario {
        name: "steady-state".into(),
        grid: grid_cfg(),
        workload: WorkloadKind::Single(spec(120)),
        policy: PolicyKind::FcfsShare,
        sim: SimConfig {
            warmup_bags: 10,
            ..SimConfig::default()
        },
    };
    let rule = StoppingRule {
        min_replications: 6,
        max_replications: 10,
        ..Default::default()
    };
    let reps = run_scenario(&scenario, 51, &rule);
    assert!(!reps.saturated);

    // The two point estimates must be compatible: each mean inside the
    // other's interval widened by a tolerance factor (the estimators are
    // biased differently at finite n).
    let tol = 3.0;
    let (lo, hi) = (
        reps.turnaround.mean - tol * reps.turnaround.half_width.max(single_ci.half_width),
        reps.turnaround.mean + tol * reps.turnaround.half_width.max(single_ci.half_width),
    );
    assert!(
        (lo..hi).contains(&single_ci.mean),
        "single-run mean {:.0} vs replications {:.0} ± {:.0} (batch {batch}, trunc {trunc})",
        single_ci.mean,
        reps.turnaround.mean,
        reps.turnaround.half_width,
    );
}

#[test]
fn turnarounds_are_autocorrelated_under_load() {
    // Sanity of the premise behind batch means: consecutive bags share the
    // queue, so their turnarounds must be positively correlated — the
    // effective sample size is visibly below the raw count.
    let mut rng = rand::rngs::StdRng::seed_from_u64(52);
    let grid = grid_cfg().build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::High,
        count: 400,
    }
    .generate(&grid_cfg(), &mut rng);
    let r = simulate(&grid, &workload, PolicyKind::Rr, &SimConfig::with_seed(52));
    assert!(!r.saturated);
    let series: Vec<f64> = r.bags.iter().map(|b| b.turnaround).collect();
    let ess = effective_sample_size(&series);
    assert!(
        ess < 0.8 * series.len() as f64,
        "high-load turnarounds should be correlated: ESS {ess:.0} of {}",
        series.len()
    );
}
