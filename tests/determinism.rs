//! Reproducibility guarantees across the whole stack: identical seeds give
//! identical traces; common random numbers hold across policies; the
//! experiment runner is deterministic despite parallel execution.

use dgsched_core::experiment::{run_replication, run_scenario, Scenario, WorkloadKind};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_des::stats::StoppingRule;
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

fn scenario(policy: PolicyKind) -> Scenario {
    Scenario {
        name: format!("det {policy}"),
        grid: GridConfig::paper(Heterogeneity::HET, Availability::MED),
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType {
                granularity: 2_000.0,
                app_size: 50_000.0,
                jitter: 0.5,
            },
            intensity: Intensity::Medium,
            count: 6,
        }),
        policy,
        sim: SimConfig::default(),
    }
}

#[test]
fn simulate_bitwise_reproducible() {
    let cfg = GridConfig::paper(Heterogeneity::HET, Availability::LOW);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let grid = cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 10_000.0,
            app_size: 100_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::Low,
        count: 5,
    }
    .generate(&cfg, &mut rng);
    let a = simulate(
        &grid,
        &workload,
        PolicyKind::LongIdle,
        &SimConfig::with_seed(9),
    );
    let b = simulate(
        &grid,
        &workload,
        PolicyKind::LongIdle,
        &SimConfig::with_seed(9),
    );
    let ja = serde_json::to_string(&a).unwrap();
    let jb = serde_json::to_string(&b).unwrap();
    assert_eq!(ja, jb, "simulation must be bitwise reproducible");
}

#[test]
fn replication_streams_keyed_by_rep_not_policy() {
    // The runner's seeding contract: the same (base_seed, rep) produces the
    // same platform/workload/failure randomness for every policy.
    let reps: Vec<u64> = vec![0, 1, 2];
    for rep in reps {
        let a = run_replication(&scenario(PolicyKind::Rr), 31, rep);
        let b = run_replication(&scenario(PolicyKind::FcfsExcl), 31, rep);
        // Arrivals come straight from the workload stream — they must match
        // across policies bag-by-bag (completion order differs, so look the
        // bags up by id).
        for bag_id in 0..3u32 {
            let aa = a
                .bags
                .iter()
                .find(|x| x.bag == bag_id)
                .expect("bag completed");
            let bb = b
                .bags
                .iter()
                .find(|x| x.bag == bag_id)
                .expect("bag completed");
            assert_eq!(aa.arrival, bb.arrival, "rep {rep} bag {bag_id}");
        }
        assert_eq!(a.total, b.total);
    }
}

#[test]
fn run_scenario_deterministic_despite_rayon() {
    let rule = StoppingRule {
        min_replications: 4,
        max_replications: 6,
        ..Default::default()
    };
    let a = run_scenario(&scenario(PolicyKind::FcfsShare), 17, &rule);
    let b = run_scenario(&scenario(PolicyKind::FcfsShare), 17, &rule);
    assert_eq!(a.replications, b.replications);
    assert_eq!(a.replication_means, b.replication_means);
    assert_eq!(a.turnaround.mean, b.turnaround.mean);
    assert_eq!(a.turnaround.half_width, b.turnaround.half_width);
}

#[test]
fn different_base_seeds_differ() {
    let rule = StoppingRule {
        min_replications: 3,
        max_replications: 3,
        ..Default::default()
    };
    let a = run_scenario(&scenario(PolicyKind::FcfsShare), 1, &rule);
    let b = run_scenario(&scenario(PolicyKind::FcfsShare), 2, &rule);
    assert_ne!(a.turnaround.mean, b.turnaround.mean);
}
