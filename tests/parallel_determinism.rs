//! Thread-count invariance of the experiment sweep.
//!
//! The headline contract of the vendored work-stealing pool: `run_matrix`
//! must produce **byte-identical** `ScenarioResult` JSON whatever the
//! pool width. Replication `r` is always seeded from `(base_seed, r)`,
//! partial statistics merge in replication-index order, and the stopping
//! rule is re-evaluated per absorbed replication — so 1 thread, 2
//! threads and an oversubscribed pool must all serialise the same bytes.
//!
//! `scripts/ci.sh` runs this file once with `DGSCHED_THREADS=1`, once
//! with the variable forced to 4, and once at the default width; the
//! in-process `rayon::with_num_threads` override takes precedence over
//! the environment, so each invocation re-proves the same equality from
//! a different baseline.

use dgsched_core::experiment::{
    fig1_panels, run_matrix, run_matrix_with_progress, PanelSpec, Scenario,
};
use dgsched_core::policy::PolicyKind;
use dgsched_des::stats::{StoppingRule, Welford};
use parking_lot::Mutex;

/// A scaled-down F1a slice: the Hom-HighAvail panel of Fig. 1 with two
/// granularities, all five policies, and small bags so the sweep stays
/// test-sized while still crossing the batching and stopping logic.
fn f1a_matrix() -> Vec<Scenario> {
    let panel: PanelSpec = fig1_panels().remove(0);
    assert_eq!(panel.label, "1a");
    let mut scenarios = panel.scenarios_for(&[1_000.0, 5_000.0], &PolicyKind::all(), 6, 1);
    for s in &mut scenarios {
        // Shrink the per-bag work so a replication takes milliseconds.
        if let dgsched_core::experiment::WorkloadKind::Single(spec) = &mut s.workload {
            spec.bot_type.app_size = 20.0 * spec.bot_type.granularity;
        }
    }
    scenarios
}

fn quick_rule() -> StoppingRule {
    StoppingRule {
        min_replications: 3,
        max_replications: 6,
        ..Default::default()
    }
}

fn matrix_json(threads: usize) -> String {
    rayon::with_num_threads(threads, || {
        serde_json::to_string_pretty(&run_matrix(&f1a_matrix(), 42, &quick_rule()))
            .expect("matrix serialises")
    })
}

#[test]
fn run_matrix_is_byte_identical_across_thread_counts() {
    let sequential = matrix_json(1);
    // Sanity: the sweep produced real results, not an empty document.
    assert!(sequential.contains("\"policy\""));
    for threads in [2, 4, 8] {
        let parallel = matrix_json(threads);
        assert_eq!(
            sequential, parallel,
            "ScenarioResult JSON diverged between 1 and {threads} threads"
        );
    }
}

#[test]
fn run_matrix_repeats_bit_for_bit_at_fixed_width() {
    // Two runs at the same width must also agree — rules out hidden
    // global state in the pool or the seeder.
    assert_eq!(matrix_json(4), matrix_json(4));
}

#[test]
fn progress_reports_every_scenario_monotonically_under_threads() {
    let scenarios = f1a_matrix();
    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let results = rayon::with_num_threads(4, || {
        run_matrix_with_progress(&scenarios, 42, &quick_rule(), |done, total, name| {
            assert_eq!(total, scenarios.len());
            assert!(!name.is_empty());
            seen.lock().push(done);
        })
    });
    assert_eq!(results.len(), scenarios.len());
    let seen = seen.into_inner();
    assert_eq!(
        seen,
        (1..=scenarios.len()).collect::<Vec<_>>(),
        "done must be strictly increasing, one report per scenario"
    );
}

#[test]
fn welford_merge_over_partitions_matches_streaming() {
    // The sweep's fork/join reduction rests on Chan's merge formula being
    // partition-independent up to fp noise: any split of the observation
    // stream must reproduce the streaming accumulator within ulp-scale
    // tolerance.
    let xs: Vec<f64> = (0..512)
        .map(|i| 1e6 + (i as f64 * 0.7).sin() * 250.0 + i as f64)
        .collect();
    let streamed: Welford = xs.iter().copied().collect();
    for parts in [2, 3, 8, 64, 512] {
        let chunk = xs.len().div_ceil(parts);
        let mut merged = Welford::new();
        for piece in xs.chunks(chunk) {
            let partial: Welford = piece.iter().copied().collect();
            merged.merge(&partial);
        }
        assert_eq!(merged.count(), streamed.count());
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(
            rel(merged.mean(), streamed.mean()) < 1e-12,
            "mean drift at {parts} partitions"
        );
        assert!(
            rel(merged.variance(), streamed.variance()) < 1e-9,
            "variance drift at {parts} partitions"
        );
        assert_eq!(merged.min(), streamed.min());
        assert_eq!(merged.max(), streamed.max());
    }
}
