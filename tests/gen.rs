//! Black-box tests of `dgsched gen`: seed determinism, pool-width
//! independence, and the validation regressions around `gen-workload`.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dgsched")
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgsched-gen-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// The heavy-tail flag set used throughout: Pareto sizes, lognormal
/// jitter, MMPP arrivals — every new distribution axis at once.
const HEAVY_TAIL_FLAGS: &[&str] = &[
    "-g",
    "5000",
    "-n",
    "12",
    "--size",
    "pareto:alpha=1.5,min=8e5,cap=1e8",
    "--jitter",
    "lognormal:sigma=1",
    "--arrivals",
    "mmpp:ratio=9,frac=0.1,len=25",
];

fn gen_stdout(threads: &str) -> Vec<u8> {
    let out = Command::new(bin())
        .arg("gen")
        .args(HEAVY_TAIL_FLAGS)
        .env("DGSCHED_THREADS", threads)
        .output()
        .expect("gen");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out.stdout
}

#[test]
fn gen_is_byte_identical_across_pool_widths() {
    // Scenario emission is pure configuration — no sampling happens, so
    // the JSON must not depend on the worker pool width at all.
    let narrow = gen_stdout("1");
    let wide = gen_stdout("4");
    assert_eq!(narrow, wide, "gen output depends on DGSCHED_THREADS");
    assert_eq!(narrow, gen_stdout("1"), "gen output is not reproducible");
    let json: serde_json::Value = serde_json::from_slice(&narrow).expect("gen emits JSON");
    assert_eq!(json["workload"]["kind"], "realistic");
    assert_eq!(json["workload"]["size"]["kind"], "pareto");
    assert_eq!(json["workload"]["arrivals"]["kind"], "mmpp");
}

#[test]
fn gen_materialized_workload_is_seed_deterministic() {
    let gen_to = |name: &str, seed: &str, threads: &str| {
        let path = tmp(name);
        let out = Command::new(bin())
            .arg("gen")
            .args(HEAVY_TAIL_FLAGS)
            .args(["-o", tmp("mat-scenario.json").to_str().unwrap()])
            .args(["--workload", path.to_str().unwrap(), "--seed", seed])
            .env("DGSCHED_THREADS", threads)
            .output()
            .expect("gen --workload");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read(&path).expect("materialized workload")
    };
    let a = gen_to("w-a.json", "9", "1");
    let b = gen_to("w-b.json", "9", "4");
    assert_eq!(a, b, "workload sampling depends on the pool width");
    let c = gen_to("w-c.json", "10", "1");
    assert_ne!(a, c, "a different seed must sample a different workload");
    // The materialized file is a loadable workload: summarize accepts it.
    let out = Command::new(bin())
        .args(["summarize", tmp("w-a.json").to_str().unwrap()])
        .output()
        .expect("summarize");
    assert!(out.status.success());
    let json: serde_json::Value = serde_json::from_slice(&out.stdout).expect("summary JSON");
    assert_eq!(json["bags"], 12);
}

#[test]
fn generated_scenario_runs_and_oracles_unmodified() {
    // A cheap realistic scenario (small fixed sizes, bursty arrivals +
    // lognormal jitter) so run + oracle stay fast.
    let path = tmp("run-scenario.json");
    let out = Command::new(bin())
        .args([
            "gen",
            "-g",
            "25000",
            "-n",
            "6",
            "--jitter",
            "lognormal:sigma=0.5",
            "--arrivals",
            "mmpp:ratio=4,frac=0.2,len=10",
            "--warmup",
            "0",
            "-o",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("gen");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = || {
        let out = Command::new(bin())
            .args([
                "run",
                path.to_str().unwrap(),
                "--min-reps",
                "2",
                "--max-reps",
                "2",
            ])
            .output()
            .expect("run");
        assert!(
            out.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).expect("utf8")
    };
    let first = run();
    assert_eq!(first, run(), "realistic scenario runs must reproduce");
    let json: serde_json::Value = serde_json::from_str(&first).expect("run JSON");
    assert_eq!(json["replications"], 2);
    assert!(json["turnaround"]["mean"].as_f64().unwrap() > 0.0);

    let out = Command::new(bin())
        .args([
            "oracle",
            path.to_str().unwrap(),
            "--min-reps",
            "1",
            "--max-reps",
            "1",
            "--oracle-reps",
            "1",
            "--restarts",
            "2",
            "--iters",
            "10",
        ])
        .output()
        .expect("oracle");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json: serde_json::Value = serde_json::from_slice(&out.stdout).expect("oracle JSON");
    assert!(json["regret"]["regret"]["mean"].as_f64().unwrap() >= 0.0);
}

#[test]
fn gen_rejects_bad_specs_with_usage_errors() {
    let expect_usage = |flags: &[&str]| {
        let out = Command::new(bin())
            .arg("gen")
            .args(flags)
            .output()
            .expect("gen");
        assert_eq!(
            out.status.code(),
            Some(2),
            "flags {flags:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    expect_usage(&["--size", "pareto:alpha=1.5"]); // min missing
    expect_usage(&["--size", "pareto:alpha=0.5,min=1e6"]); // infinite mean
    expect_usage(&["--size", "cauchy"]); // unknown kind
    expect_usage(&["--size", "fixed:app_size=1e6,bogus=1"]); // unknown key
    expect_usage(&["--jitter", "lognormal:sigma=0"]);
    expect_usage(&["--arrivals", "hyperexp:cv=0.5"]);
    expect_usage(&["--arrivals", "mmpp:ratio=9,frac=0.1"]); // len missing
    expect_usage(&["--arrivals", "diurnal:period=86400,amplitude=2"]);
    expect_usage(&["--policy", "frobnicate"]);
    expect_usage(&["-g", "0"]);
    expect_usage(&["-n", "0"]);
}

#[test]
fn gen_workload_validates_before_generating() {
    // Regression: these used to hang the fill loop forever (the running
    // sum of task work never reaches the application size) or silently
    // emit an empty workload instead of failing with a usage error.
    let expect_usage = |flags: &[&str]| {
        let out = Command::new(bin())
            .arg("gen-workload")
            .args(flags)
            .args(["-o", tmp("never-written.json").to_str().unwrap()])
            .output()
            .expect("gen-workload");
        assert_eq!(
            out.status.code(),
            Some(2),
            "flags {flags:?}: stderr {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };
    expect_usage(&["-g", "0"]);
    expect_usage(&["-g", "-5000"]);
    expect_usage(&["-g", "NaN"]);
    expect_usage(&["-g", "inf"]);
    expect_usage(&["-n", "0"]);
    assert!(
        !tmp("never-written.json").exists(),
        "rejected specs must not write output files"
    );
}

#[test]
fn gen_cv_one_is_accepted_end_to_end() {
    // Regression companion to the scenario-level cv=1 fix: the CLI path
    // must accept the Poisson-degenerate hyperexponential as well.
    let path = tmp("cv1.json");
    let out = Command::new(bin())
        .args([
            "gen",
            "-n",
            "4",
            "--arrivals",
            "hyperexp:cv=1",
            "--workload",
            path.to_str().unwrap(),
            "-o",
            tmp("cv1-scenario.json").to_str().unwrap(),
        ])
        .output()
        .expect("gen");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(bin())
        .args(["summarize", path.to_str().unwrap()])
        .output()
        .expect("summarize");
    assert!(out.status.success());
}
