//! End-to-end integration: grid substrate → workload substrate → scheduler
//! → metrics, across all six paper platforms and all five policies.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

/// A scaled-down paper bag type: same granularity structure, smaller app
/// size so tests stay fast.
fn small_type(granularity: f64) -> BotType {
    BotType {
        granularity,
        app_size: 20.0 * granularity,
        jitter: 0.5,
    }
}

#[test]
fn every_platform_and_policy_completes() {
    for (name, grid_cfg) in GridConfig::paper_suite() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let grid = grid_cfg.build(&mut rng);
        let workload = WorkloadSpec {
            bot_type: small_type(5_000.0),
            intensity: Intensity::Low,
            count: 5,
        }
        .generate(&grid_cfg, &mut rng);
        for kind in PolicyKind::all() {
            let r = simulate(&grid, &workload, kind, &SimConfig::with_seed(2));
            assert_eq!(r.completed, 5, "{name}/{kind} must complete");
            assert!(!r.saturated, "{name}/{kind} must not saturate");
            assert!(r.mean_turnaround() > 0.0, "{name}/{kind}");
        }
    }
}

#[test]
fn availability_degrades_turnaround() {
    // Same workload and heterogeneity: turnaround must rise monotonically
    // as availability falls (the Fig.1 → Fig.2 doubling the paper reports).
    let mut means = Vec::new();
    for avail in [Availability::HIGH, Availability::MED, Availability::LOW] {
        let grid_cfg = GridConfig::paper(Heterogeneity::HOM, avail);
        let mut sum = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let grid = grid_cfg.build(&mut rng);
            let workload = WorkloadSpec {
                bot_type: small_type(25_000.0),
                intensity: Intensity::Low,
                count: 6,
            }
            .generate(&grid_cfg, &mut rng);
            let r = simulate(
                &grid,
                &workload,
                PolicyKind::FcfsShare,
                &SimConfig::with_seed(seed),
            );
            assert!(!r.saturated);
            sum += r.mean_turnaround();
        }
        means.push(sum / reps as f64);
    }
    assert!(
        means[0] < means[1] && means[1] < means[2],
        "turnaround must degrade with availability: {means:?}"
    );
}

#[test]
fn higher_intensity_raises_turnaround() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
    let mut means = Vec::new();
    for intensity in [Intensity::Low, Intensity::High] {
        let mut sum = 0.0;
        let reps = 5;
        for seed in 0..reps {
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
            let grid = grid_cfg.build(&mut rng);
            let workload = WorkloadSpec {
                bot_type: small_type(5_000.0),
                intensity,
                count: 12,
            }
            .generate(&grid_cfg, &mut rng);
            let r = simulate(
                &grid,
                &workload,
                PolicyKind::Rr,
                &SimConfig::with_seed(seed),
            );
            assert!(!r.saturated);
            sum += r.mean_turnaround();
        }
        means.push(sum / reps as f64);
    }
    assert!(
        means[1] > means[0],
        "high intensity must raise turnaround: {means:?}"
    );
}

#[test]
fn het_platform_uses_replication_better_than_threshold_one() {
    // On heterogeneous machines a replica gives a slow task a second chance
    // on a faster machine ([3]); threshold 2 should beat threshold 1 for a
    // machine-sized bag on an otherwise idle grid.
    let grid_cfg = GridConfig::paper(Heterogeneity::HET, Availability::Always);
    let grid_cfg = GridConfig {
        checkpoint: dgsched_grid::CheckpointConfig::disabled(),
        ..grid_cfg
    };
    let mut gained = 0;
    let reps = 8;
    for seed in 0..reps {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let grid = grid_cfg.build(&mut rng);
        let workload = WorkloadSpec {
            bot_type: BotType {
                granularity: 10_000.0,
                app_size: 4.0e5,
                jitter: 0.5,
            },
            intensity: Intensity::Low,
            count: 1,
        }
        .generate(&grid_cfg, &mut rng);
        let base = SimConfig::with_seed(seed);
        let r1 = simulate(
            &grid,
            &workload,
            PolicyKind::FcfsShare,
            &SimConfig {
                replication_threshold: 1,
                ..base
            },
        );
        let r2 = simulate(
            &grid,
            &workload,
            PolicyKind::FcfsShare,
            &SimConfig {
                replication_threshold: 2,
                ..base
            },
        );
        if r2.mean_turnaround() < r1.mean_turnaround() {
            gained += 1;
        }
    }
    assert!(
        gained > reps / 2,
        "replication should usually help on Het grids ({gained}/{reps} runs)"
    );
}

#[test]
fn counters_are_internally_consistent() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::LOW);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: small_type(25_000.0),
        intensity: Intensity::Medium,
        count: 8,
    }
    .generate(&grid_cfg, &mut rng);
    let r = simulate(
        &grid,
        &workload,
        PolicyKind::LongIdle,
        &SimConfig::with_seed(4),
    );
    assert!(!r.saturated);
    let c = &r.counters;
    // Every launched replica either completed a task, was killed by a
    // failure, or was killed as a sibling.
    let total_tasks: u64 = workload.total_tasks() as u64;
    assert_eq!(
        c.replicas_launched,
        total_tasks + c.replicas_killed_failure + c.replicas_killed_sibling,
        "replica conservation"
    );
    // All work delivered exactly once.
    assert!((c.useful_work - workload.total_work()).abs() < 1e-6);
    // Waste is occupancy of killed replicas, a subset of all occupancy.
    assert!(c.killed_occupancy <= c.busy_time);
    assert!(c.machine_failures > 0);
}

#[test]
fn checkpoint_efficiency_enters_lambda() {
    // The demand model must use effective power: for the same intensity the
    // LowAvail grid sees a proportionally slower arrival stream.
    let high = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
    let low = GridConfig::paper(Heterogeneity::HOM, Availability::LOW);
    let spec = WorkloadSpec {
        bot_type: BotType::paper(5_000.0),
        intensity: Intensity::High,
        count: 3,
    };
    let mut rng1 = rand::rngs::StdRng::seed_from_u64(1);
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
    let wl_high = spec.generate(&high, &mut rng1);
    let wl_low = spec.generate(&low, &mut rng2);
    let ratio = wl_high.lambda / wl_low.lambda;
    let expected = high.effective_power() / low.effective_power();
    assert!(
        (ratio - expected).abs() < 1e-9,
        "ratio {ratio} vs {expected}"
    );
}
