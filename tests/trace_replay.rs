//! Trace-replay exactness: re-simulating a policy's captured trace
//! through `TraceEnv` reproduces its original `RunResult` byte-for-byte —
//! the replay twin of the `simulate_instrumented` passivity proof, and
//! the load-bearing correctness anchor of the hindsight oracle.
//!
//! Two contracts are pinned:
//!
//! * **Exactness** — for every policy, replaying the trace captured from
//!   its own run yields the identical `RunResult` (serialised JSON
//!   compared byte-for-byte), including on grids with correlated outages
//!   and on never-failing grids.
//! * **Policy independence** — the environment timeline captured from one
//!   policy's run re-drives *any* policy to exactly the run it would have
//!   produced live under the same seed, because availability/outage
//!   streams are keyed by seed only. This is what lets the oracle score
//!   alternative schedules against a single captured environment.

use dgsched_core::experiment::{
    replication_inputs, run_replication_traced, Scenario, WorkloadKind,
};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{
    simulate_replayed, simulate_replayed_observed, SimConfig, TraceEnv, TraceRecorder,
};
use dgsched_des::dist::DistConfig;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity, OutageConfig};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};

/// A small grid (≈8 machines) so the 7-policy × 4-platform battery stays
/// fast; the replay seam is exercised identically at any scale.
fn small_grid(heterogeneity: Heterogeneity, availability: Availability) -> GridConfig {
    GridConfig {
        total_power: 80.0,
        heterogeneity,
        availability,
        checkpoint: CheckpointConfig::default(),
        outages: None,
    }
}

/// Hom/Het × High/Low — the oracle battery's platform axis.
fn platforms() -> Vec<(&'static str, GridConfig)> {
    vec![
        (
            "Hom-High",
            small_grid(Heterogeneity::HOM, Availability::HIGH),
        ),
        ("Hom-Low", small_grid(Heterogeneity::HOM, Availability::LOW)),
        (
            "Het-High",
            small_grid(Heterogeneity::HET, Availability::HIGH),
        ),
        ("Het-Low", small_grid(Heterogeneity::HET, Availability::LOW)),
    ]
}

fn scenario(policy: PolicyKind, name: &str, grid: GridConfig) -> Scenario {
    Scenario {
        name: format!("replay {name} {policy}"),
        grid,
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType {
                granularity: 2_000.0,
                app_size: 16_000.0,
                jitter: 0.5,
            },
            intensity: Intensity::Medium,
            count: 5,
        }),
        policy,
        sim: SimConfig::default(),
    }
}

fn json(r: &impl serde::Serialize) -> String {
    serde_json::to_string(r).unwrap()
}

/// Captures a replication's trace and replays it through the same policy;
/// the `RunResult`s must serialise byte-identically.
fn assert_replay_exact(sc: &Scenario, base_seed: u64, rep: u64) {
    let (live, trace) = run_replication_traced(sc, base_seed, rep);
    let (grid, workload, cfg) = replication_inputs(sc, base_seed, rep);
    let env = TraceEnv::from_trace(&trace.events, grid.len());
    let replayed = simulate_replayed(
        &grid,
        &workload,
        sc.policy.create_seeded(cfg.seed),
        &cfg,
        &env,
    );
    assert_eq!(
        json(&live),
        json(&replayed),
        "replay diverged from live run for '{}'",
        sc.name
    );
}

#[test]
fn replaying_own_trace_reproduces_run_result_byte_for_byte() {
    for (pname, grid) in platforms() {
        for policy in PolicyKind::all_with_baselines() {
            assert_replay_exact(&scenario(policy, pname, grid), 2008, 0);
        }
    }
}

#[test]
fn replay_is_exact_across_replications() {
    let grid = small_grid(Heterogeneity::HET, Availability::LOW);
    for rep in 0..3 {
        assert_replay_exact(&scenario(PolicyKind::RrNrf, "Het-Low", grid), 2008, rep);
    }
}

#[test]
fn replay_is_exact_under_correlated_outages() {
    let mut grid = small_grid(Heterogeneity::HOM, Availability::HIGH);
    grid.outages = Some(OutageConfig {
        mtbo: 2_000.0,
        duration: DistConfig::Constant { value: 120.0 },
        fraction: 0.5,
    });
    for policy in PolicyKind::all_with_baselines() {
        assert_replay_exact(&scenario(policy, "Hom-High+outage", grid), 2008, 0);
    }
}

#[test]
fn replay_is_exact_on_never_failing_grid() {
    let grid = small_grid(Heterogeneity::HOM, Availability::Always);
    assert_replay_exact(&scenario(PolicyKind::Rr, "Hom-Always", grid), 2008, 0);
}

/// Replaying a run while re-capturing its trace must reproduce the
/// recorded timeline itself, not just the final metrics: same events, in
/// the same order, at bit-identical times.
#[test]
fn replayed_trace_matches_captured_trace() {
    let grid = small_grid(Heterogeneity::HET, Availability::LOW);
    let sc = scenario(PolicyKind::LongIdle, "Het-Low", grid);
    let (_, trace) = run_replication_traced(&sc, 2008, 0);
    let (g, w, cfg) = replication_inputs(&sc, 2008, 0);
    let env = TraceEnv::from_trace(&trace.events, g.len());
    let mut retrace = TraceRecorder::new();
    simulate_replayed_observed(
        &g,
        &w,
        sc.policy.create_seeded(cfg.seed),
        &cfg,
        &env,
        &mut retrace,
    );
    assert_eq!(
        json(&trace.events),
        json(&retrace.events),
        "replay must re-emit the recorded timeline verbatim"
    );
}

/// The environment timeline is policy-independent: the trace captured
/// under one policy re-drives every other policy to exactly the run it
/// produces live at the same `(base_seed, rep)`.
#[test]
fn any_policy_replays_exactly_under_another_policys_trace() {
    let grid = small_grid(Heterogeneity::HET, Availability::LOW);
    let donor = scenario(PolicyKind::Rr, "Het-Low", grid);
    let (_, trace) = run_replication_traced(&donor, 2008, 0);
    let (g, w, cfg) = replication_inputs(&donor, 2008, 0);
    let env = TraceEnv::from_trace(&trace.events, g.len());
    for policy in PolicyKind::all_with_baselines() {
        let live = run_replication_traced(&scenario(policy, "Het-Low", grid), 2008, 0).0;
        let replayed = simulate_replayed(&g, &w, policy.create_seeded(cfg.seed), &cfg, &env);
        assert_eq!(
            json(&live),
            json(&replayed),
            "policy {policy} diverged under a donor trace"
        );
    }
}
