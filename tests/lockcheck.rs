//! The lock-order witness's regression battery, plus the passivity
//! proof that the `lockcheck` feature cannot perturb results.
//!
//! Two halves:
//!
//! * `#[cfg(feature = "lockcheck")]` tests reconstruct the PR-5
//!   steal-loop deadlock shape — two threads acquiring each other's
//!   queue mutexes in opposite order — and assert the witness reports
//!   the cycle *deterministically* (a panic naming both acquisition
//!   sites) instead of hanging;
//! * an **unconditional** golden test pins the `run_matrix` JSON of a
//!   fixed mini-sweep to a recorded fingerprint. `cargo test` runs it
//!   with the feature off, `scripts/ci.sh` re-runs it with the feature
//!   on: both builds must produce the exact seed bytes, which is the
//!   observer-passivity-style argument that the witness is invisible to
//!   results (`dgsched-obs` proved its recorder the same way).

use dgsched_core::experiment::{fig1_panels, run_matrix, PanelSpec, Scenario};
use dgsched_core::policy::PolicyKind;
use dgsched_des::stats::StoppingRule;

/// The same scaled-down F1a slice `tests/parallel_determinism.rs` pins
/// across pool widths; here it is pinned across *feature* configurations.
fn mini_matrix() -> Vec<Scenario> {
    let panel: PanelSpec = fig1_panels().remove(0);
    assert_eq!(panel.label, "1a");
    let mut scenarios = panel.scenarios_for(&[1_000.0], &PolicyKind::all(), 4, 1);
    for s in &mut scenarios {
        if let dgsched_core::experiment::WorkloadKind::Single(spec) = &mut s.workload {
            spec.bot_type.app_size = 20.0 * spec.bot_type.granularity;
        }
    }
    scenarios
}

fn quick_rule() -> StoppingRule {
    StoppingRule {
        min_replications: 3,
        max_replications: 4,
        ..Default::default()
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of the mini-sweep's `run_matrix` JSON, recorded from the
/// seed (lockcheck-off) build. Any build configuration — feature off,
/// feature on, any pool width — must reproduce it bit-for-bit. If a
/// deliberate result-schema change moves this value, re-record it from a
/// lockcheck-OFF build only, so the constant always means "seed bytes".
const SEED_MATRIX_FNV1A64: u64 = 0x393F_B48B_E2E2_FD19;

#[test]
fn matrix_bytes_match_the_seed_fingerprint_at_widths_1_and_4() {
    for width in [1usize, 4] {
        let json = rayon::with_num_threads(width, || {
            serde_json::to_string_pretty(&run_matrix(&mini_matrix(), 42, &quick_rule()))
                .expect("matrix serialises")
        });
        assert!(json.contains("\"policy\""), "sweep produced no results");
        assert_eq!(
            fnv1a64(json.as_bytes()),
            SEED_MATRIX_FNV1A64,
            "run_matrix bytes diverged from the recorded seed fingerprint at \
             width {width} (lockcheck feature {}); the witness must be \
             result-passive",
            if cfg!(feature = "lockcheck") {
                "ON"
            } else {
                "off"
            }
        );
    }
}

#[cfg(feature = "lockcheck")]
mod witness {
    use parking_lot::Mutex;
    use std::sync::Arc;

    /// The PR-5 hold-and-wait shape: worker 1 holds its own queue lock
    /// while stealing from worker 2's queue, and vice versa. Before the
    /// guard-drop fix this hung a real `parallel_determinism` run and
    /// was diagnosed via futex; the witness turns the same shape into a
    /// deterministic panic naming both acquisition sites.
    #[test]
    fn pr5_steal_loop_shape_is_reported_not_hung() {
        let queue_a = Arc::new(Mutex::new(vec![1u64]));
        let queue_b = Arc::new(Mutex::new(vec![2u64]));

        // Worker 1: own queue (a) held across the "steal" from b. Runs
        // to completion — it merely records the order a → b.
        {
            let (qa, qb) = (queue_a.clone(), queue_b.clone());
            let w1 = std::thread::spawn(move || {
                let own = qa.lock();
                let stolen = qb.lock();
                own.len() + stolen.len()
            });
            assert_eq!(w1.join().expect("worker 1 only records an order"), 2);
        }

        // Worker 2: the mirror image — own queue (b) held across the
        // steal from a. The witness must panic at the second acquisition
        // (before blocking), deterministically.
        let (qa, qb) = (queue_a.clone(), queue_b.clone());
        let w2 = std::thread::spawn(move || {
            let _own = qb.lock();
            let _stolen = qa.lock(); // b → a contradicts recorded a → b
        });
        let payload = w2
            .join()
            .expect_err("the inverted steal order must panic, not hang");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("lock acquisition order cycle"),
            "unexpected panic: {msg}"
        );
        // Both acquisition sites are named, and they are in this file.
        assert!(
            msg.matches("tests/lockcheck.rs").count() >= 2,
            "cycle report must name both acquisition sites:\n{msg}"
        );
        assert!(
            msg.contains("hold-and-wait"),
            "report should say what the bug class is:\n{msg}"
        );
    }

    /// The fixed steal loop's discipline — drop the own-queue guard
    /// before stealing — never trips the witness, even under real
    /// cross-thread contention.
    #[test]
    fn guard_drop_steal_discipline_is_clean() {
        let queues: Arc<Vec<Mutex<Vec<u64>>>> =
            Arc::new((0..4).map(|i| Mutex::new(vec![i])).collect());
        std::thread::scope(|s| {
            for me in 0..4usize {
                let queues = queues.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        // Own pop: guard is a statement temporary.
                        let own = queues[me].lock().pop();
                        // Steal with nothing held: no edges recorded.
                        let stolen =
                            own.or_else(|| (1..4).find_map(|d| queues[(me + d) % 4].lock().pop()));
                        if let Some(v) = stolen {
                            queues[me].lock().push(v);
                        }
                    }
                });
            }
        });
    }

    /// The real pool under the witness: a nested parallel sweep shape
    /// (the exact workload that deadlocked in PR 5) completes cleanly.
    #[test]
    fn real_pool_parallel_map_runs_clean_under_witness() {
        let out: Vec<u64> = rayon::with_num_threads(4, || {
            use rayon::prelude::*;
            (0..64u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x * 2)
                .collect()
        });
        assert_eq!(out, (0..64).map(|x| x * 2).collect::<Vec<_>>());
    }
}
