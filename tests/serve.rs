//! Integration tests for `dgsched serve`: the daemon is spawned as a
//! real child process (so pool width is controlled by `DGSCHED_THREADS`
//! in its environment, exactly as deployed) and exercised over its TCP
//! socket.
//!
//! The two properties under test are the service's whole story:
//!
//! 1. **Dedupe**: concurrent identical requests produce byte-identical
//!    responses from exactly one sweep execution (proven by the
//!    `serve_sweeps_executed` counter, not by timing).
//! 2. **Crash recovery**: a daemon SIGKILLed mid-sweep loses at most the
//!    replication in flight; a restarted daemon answers the re-issued
//!    request byte-identically to an uninterrupted run, resuming from
//!    the journal rather than starting over.
//!
//! Both properties must hold at pool width 1 and width 4 — the
//! determinism contract says width never changes bytes.

use dgsched_core::experiment::{Scenario, WorkloadKind};
use dgsched_core::policy::PolicyKind;
use dgsched_core::serve::{http_request, http_request_streaming, SweepRequest};
use dgsched_core::sim::SimConfig;
use dgsched_des::stats::StoppingRule;
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_dgsched")
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dgsched-serve-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spawned daemon child; killed on drop so a failing assertion never
/// leaks a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `dgsched serve` on an ephemeral port with the given pool
    /// width and cache directory, and parses the bound address from the
    /// machine-readable `listening` line on stdout.
    fn start(cache_dir: &Path, width: &str) -> Daemon {
        let mut child = Command::new(bin())
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--cache-dir",
                cache_dir.to_str().expect("utf-8 temp path"),
            ])
            .env("DGSCHED_THREADS", width)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn dgsched serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read listening line");
        let value: serde_json::Value = serde_json::from_str(&line)
            .unwrap_or_else(|e| panic!("bad listening line {line:?}: {e}"));
        assert_eq!(value["event"], "listening");
        let addr = value["addr"].as_str().expect("addr string").to_string();
        Daemon { child, addr }
    }

    fn metrics(&self) -> serde_json::Value {
        let resp = http_request(&self.addr, "GET", "/metrics", &[], b"").expect("GET /metrics");
        assert_eq!(resp.status, 200);
        serde_json::from_slice(&resp.body).expect("metrics JSON")
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics()["counters"][name]
            .as_u64()
            .unwrap_or_else(|| panic!("counter {name} missing"))
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        // Consume self without running Drop twice.
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A sweep sized to take long enough (a second or two, even in release
/// builds) that a SIGKILL reliably lands mid-sweep and two concurrent
/// requests reliably overlap: six scenarios, more than any tested pool
/// width, so work always remains after the first scenario completes.
fn slow_request() -> Vec<u8> {
    let scenario = |name: &str, granularity: f64, policy: PolicyKind| Scenario {
        name: name.to_string(),
        grid: GridConfig {
            total_power: 100.0,
            heterogeneity: Heterogeneity::HOM,
            availability: Availability::HIGH,
            checkpoint: Default::default(),
            outages: None,
        },
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType {
                granularity,
                app_size: 120_000.0,
                jitter: 0.5,
            },
            intensity: Intensity::Medium,
            count: 60,
        }),
        policy,
        sim: SimConfig::default(),
    };
    let request = SweepRequest {
        scenarios: vec![
            scenario("it: g=1000 RR", 1_000.0, PolicyKind::Rr),
            scenario("it: g=1000 Share", 1_000.0, PolicyKind::FcfsShare),
            scenario("it: g=2000 RR", 2_000.0, PolicyKind::Rr),
            scenario("it: g=2000 LongIdle", 2_000.0, PolicyKind::LongIdle),
            scenario("it: g=4000 RR", 4_000.0, PolicyKind::Rr),
            scenario("it: g=4000 Share", 4_000.0, PolicyKind::FcfsShare),
        ],
        base_seed: 2008,
        rule: StoppingRule {
            min_replications: 3,
            max_replications: 3,
            ..StoppingRule::default()
        },
        tenant: None,
    };
    serde_json::to_vec(&request).expect("request serialises")
}

/// Two concurrent identical requests: byte-identical responses, exactly
/// one sweep executed. The counters prove the second request was served
/// by the first's flight (or its freshly cached result), never by a
/// second computation.
fn concurrent_identical_requests_dedupe_at(width: &str) {
    let dir = tmp_dir(&format!("dedupe-w{width}"));
    let daemon = Daemon::start(&dir, width);
    let body = Arc::new(slow_request());
    let addr = daemon.addr.clone();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let body = body.clone();
            let addr = addr.clone();
            std::thread::spawn(move || {
                let resp = http_request(&addr, "POST", "/sweep", &[], &body).expect("POST /sweep");
                assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
                resp.body
            })
        })
        .collect();
    let bodies: Vec<Vec<u8>> = workers
        .into_iter()
        .map(|w| w.join().expect("worker"))
        .collect();
    assert_eq!(
        bodies[0], bodies[1],
        "concurrent identical requests must serve identical bytes"
    );
    assert_eq!(
        daemon.counter("serve_sweeps_executed"),
        1,
        "two identical requests must execute exactly one sweep"
    );
    let hits = daemon.counter("serve_cache_hits");
    let waits = daemon.counter("serve_single_flight_waits");
    assert_eq!(
        hits + waits,
        1,
        "the duplicate must be served by the flight or the fresh cache \
         (hits {hits}, waits {waits})"
    );
    // A third request long after completion is a plain cache hit, still
    // the same bytes.
    let third = http_request(&daemon.addr, "POST", "/sweep", &[], &body).expect("third request");
    assert_eq!(third.status, 200);
    assert_eq!(third.body, bodies[0], "cache hit changed bytes");
    assert_eq!(daemon.counter("serve_sweeps_executed"), 1);
    daemon.kill();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_identical_requests_dedupe_width_1() {
    concurrent_identical_requests_dedupe_at("1");
}

#[test]
fn concurrent_identical_requests_dedupe_width_4() {
    concurrent_identical_requests_dedupe_at("4");
}

/// SIGKILL the daemon mid-sweep; a restarted daemon on the same cache
/// directory must answer the re-issued request byte-identically to an
/// uninterrupted daemon's answer, resuming from the journal (proven by
/// the replay counters) instead of recomputing from scratch.
fn kill_resume_is_byte_identical_at(width: &str) {
    let body = slow_request();

    // Reference: an uninterrupted daemon computes the canonical bytes.
    let ref_dir = tmp_dir(&format!("killref-w{width}"));
    let reference = Daemon::start(&ref_dir, width);
    let expected =
        http_request(&reference.addr, "POST", "/sweep", &[], &body).expect("reference request");
    assert_eq!(expected.status, 200);
    reference.kill();
    std::fs::remove_dir_all(&ref_dir).ok();

    // Victim: start the same sweep in streaming mode and SIGKILL the
    // daemon after the first progress event — at least one scenario is
    // journaled, at least one is still in flight (6 scenarios > width).
    let dir = tmp_dir(&format!("kill-w{width}"));
    let victim = Daemon::start(&dir, width);
    let (status, _headers, mut stream) =
        http_request_streaming(&victim.addr, "POST", "/sweep?stream=1", &[], &body)
            .expect("streaming request");
    assert_eq!(status, 200);
    let mut line = String::new();
    stream.read_line(&mut line).expect("first progress event");
    let event: serde_json::Value = serde_json::from_str(&line).expect("progress JSON");
    assert_eq!(event["event"], "progress", "unexpected first event: {line}");
    victim.kill();

    // Restart on the same state directory: the journal survived, the
    // response never completed.
    let restarted = Daemon::start(&dir, width);
    assert!(
        restarted.counter("serve_pending_journals") >= 1,
        "the killed sweep's journal must be visible at startup"
    );
    let resumed =
        http_request(&restarted.addr, "POST", "/sweep", &[], &body).expect("re-issued request");
    assert_eq!(resumed.status, 200);
    assert_eq!(
        resumed.body, expected.body,
        "resumed response must be byte-identical to an uninterrupted run"
    );
    assert!(
        restarted.counter("serve_journal_replayed") >= 1,
        "the resumed sweep must replay journaled replications"
    );
    assert!(
        restarted.counter("serve_journal_resumes") >= 1,
        "the journal must report a resume"
    );
    restarted.kill();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_resume_is_byte_identical_width_1() {
    kill_resume_is_byte_identical_at("1");
}

#[test]
fn kill_resume_is_byte_identical_width_4() {
    kill_resume_is_byte_identical_at("4");
}

/// The `--check` self-test exits 0 and reports the byte-identical hit;
/// this is what CI runs as its cheapest liveness probe.
#[test]
fn serve_check_self_test_passes() {
    let out = Command::new(bin())
        .args(["serve", "--check"])
        .output()
        .expect("run serve --check");
    assert!(
        out.status.success(),
        "serve --check failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("byte-identical hit"), "{stdout}");
}

/// Usage errors in the serve subcommand follow the CLI convention:
/// unknown flags exit 2 with a pointer at the usage text.
#[test]
fn serve_rejects_unknown_flags() {
    let out = Command::new(bin())
        .args(["serve", "--frobnicate"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}
