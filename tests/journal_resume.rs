//! Crash-safety and resume-determinism of the replication journal.
//!
//! The contract under test: `run_matrix_journaled` produces
//! **byte-identical** `ScenarioResult` JSON whether the sweep ran straight
//! through, or was killed at an arbitrary byte of the journal and resumed
//! — any number of times, at any pool width. A crash is simulated by
//! truncating the journal file mid-record (exactly what a killed process
//! leaves behind); the resumed sweep must detect the torn tail, drop it,
//! replay the intact prefix and recompute the rest.
//!
//! `scripts/ci.sh` runs this file at `DGSCHED_THREADS=1` and `=4`; the
//! in-process `rayon::with_num_threads` calls below add explicit widths on
//! top, so each CI invocation re-proves the equalities from a different
//! baseline.

use dgsched_core::experiment::{
    run_matrix, run_matrix_journaled, run_matrix_journaled_with, RepGuard, Scenario, WorkloadKind,
};
use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::SimConfig;
use dgsched_des::stats::StoppingRule;
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn scenario(name: &str, policy: PolicyKind) -> Scenario {
    Scenario {
        name: name.into(),
        grid: GridConfig {
            total_power: 100.0,
            heterogeneity: Heterogeneity::HOM,
            availability: Availability::HIGH,
            checkpoint: Default::default(),
            outages: None,
        },
        workload: WorkloadKind::Single(WorkloadSpec {
            bot_type: BotType {
                granularity: 1_000.0,
                app_size: 20_000.0,
                jitter: 0.5,
            },
            intensity: Intensity::Low,
            count: 6,
        }),
        policy,
        sim: SimConfig::default(),
    }
}

fn matrix() -> Vec<Scenario> {
    vec![
        scenario("journal-a", PolicyKind::Rr),
        scenario("journal-b", PolicyKind::FcfsShare),
        scenario("journal-c", PolicyKind::LongIdle),
    ]
}

fn rule() -> StoppingRule {
    StoppingRule {
        min_replications: 3,
        max_replications: 6,
        ..Default::default()
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dgsched-journal-resume");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.jsonl", std::process::id()))
}

#[test]
fn journaled_sweep_matches_plain_matrix_at_every_width() {
    let scenarios = matrix();
    let plain = serde_json::to_string(&run_matrix(&scenarios, 42, &rule())).unwrap();
    for width in [1usize, 4] {
        let path = tmp(&format!("plain-eq-{width}"));
        let out = rayon::with_num_threads(width, || {
            run_matrix_journaled(&scenarios, 42, &rule(), &path, false, RepGuard::default())
        })
        .unwrap();
        assert_eq!(
            serde_json::to_string(&out.results).unwrap(),
            plain,
            "journaled sweep diverged from run_matrix at width {width}"
        );
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn kill_and_resume_is_byte_identical_at_any_cut_point() {
    let scenarios = matrix();
    for width in [1usize, 4] {
        let path = tmp(&format!("kill-{width}"));
        let straight = rayon::with_num_threads(width, || {
            run_matrix_journaled(&scenarios, 42, &rule(), &path, false, RepGuard::default())
        })
        .unwrap();
        let reference = serde_json::to_string(&straight.results).unwrap();
        let full = std::fs::read(&path).unwrap();
        let total_records = full.iter().filter(|&&b| b == b'\n').count() - 1;
        assert!(total_records >= 9, "3 scenarios × ≥3 reps journaled");

        // Kill the sweep at assorted byte offsets: after the header, after
        // a few whole records, and twice mid-record (a torn tail). Every
        // resume must reproduce the straight-through bytes.
        let header_end = full.iter().position(|&b| b == b'\n').unwrap() + 1;
        let cuts = [
            header_end,
            header_end + 17, // torn first record
            full.len() / 2,  // torn middle record (with luck, mid-float)
            full.len() - 3,  // torn final record
        ];
        for (i, &cut) in cuts.iter().enumerate() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let resumed = rayon::with_num_threads(width, || {
                run_matrix_journaled(&scenarios, 42, &rule(), &path, true, RepGuard::default())
            })
            .unwrap();
            assert_eq!(
                serde_json::to_string(&resumed.results).unwrap(),
                reference,
                "resume after cut {i} (byte {cut}) diverged at width {width}"
            );
            assert_eq!(resumed.stats.resumes, 1);
            let intact_records = full[..cut]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                .saturating_sub(1);
            assert_eq!(
                resumed.stats.records_replayed as usize, intact_records,
                "every intact record is replayed, nothing recomputed twice"
            );
            if cut > header_end && full[cut - 1] != b'\n' {
                assert_eq!(resumed.stats.torn_tails, 1, "cut {i} tore a record");
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn repeated_kills_still_converge_to_the_same_bytes() {
    // Kill → resume → kill the resumed journal → resume again: the third
    // generation must still serialise the straight-through bytes.
    let scenarios = matrix();
    let path = tmp("rekill");
    let straight =
        run_matrix_journaled(&scenarios, 42, &rule(), &path, false, RepGuard::default()).unwrap();
    let reference = serde_json::to_string(&straight.results).unwrap();
    for _generation in 0..3 {
        let full = std::fs::read(&path).unwrap();
        let cut = full.len() * 2 / 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let resumed =
            run_matrix_journaled(&scenarios, 42, &rule(), &path, true, RepGuard::default())
                .unwrap();
        assert_eq!(serde_json::to_string(&resumed.results).unwrap(), reference);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn persistent_panic_is_isolated_to_its_scenario() {
    let scenarios = matrix();
    let rule = rule();
    for width in [1usize, 4] {
        let path = tmp(&format!("panic-{width}"));
        // Replication 1 of journal-b dies on every attempt; everything
        // else runs normally.
        let out = rayon::with_num_threads(width, || {
            run_matrix_journaled_with(
                &scenarios,
                42,
                &rule,
                &path,
                false,
                RepGuard::default(),
                |s: &Scenario, seed: u64, rep: u64| {
                    if s.name == "journal-b" && rep == 1 {
                        panic!("injected fault in {} rep {rep}", s.name);
                    }
                    dgsched_core::experiment::run_replication(s, seed, rep)
                },
            )
        })
        .unwrap();
        let by_name = |n: &str| out.results.iter().find(|r| r.name == n).unwrap();
        let b = by_name("journal-b");
        assert!(b.saturated, "a failed replication marks the scenario");
        assert_eq!(b.failed_replications, 1);
        assert_eq!(b.failure_reasons.len(), 1);
        assert!(
            b.failure_reasons[0].contains("injected fault"),
            "{:?}",
            b.failure_reasons
        );
        assert!(b.replication_means.is_empty(), "statistics dropped");
        // The sweep continued: the other scenarios match their plain runs.
        let plain = run_matrix(&scenarios, 42, &rule);
        for name in ["journal-a", "journal-c"] {
            let clean = plain.iter().find(|r| r.name == name).unwrap();
            assert_eq!(
                serde_json::to_string(by_name(name)).unwrap(),
                serde_json::to_string(clean).unwrap(),
                "{name} perturbed by journal-b's panic at width {width}"
            );
        }
        // One failing replication: first attempt panics, the retry panics,
        // then it is recorded as failed.
        assert_eq!(out.stats.replication_panics, 2);
        assert_eq!(out.stats.replication_retries, 1);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn transient_panic_is_retried_and_leaves_no_trace_in_the_results() {
    let scenarios = matrix();
    let rule = rule();
    let path = tmp("transient");
    let attempts = AtomicU64::new(0);
    let out = run_matrix_journaled_with(
        &scenarios,
        42,
        &rule,
        &path,
        false,
        RepGuard::default(),
        |s: &Scenario, seed: u64, rep: u64| {
            if s.name == "journal-a" && rep == 2 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("transient fault");
            }
            dgsched_core::experiment::run_replication(s, seed, rep)
        },
    )
    .unwrap();
    let plain = serde_json::to_string(&run_matrix(&scenarios, 42, &rule)).unwrap();
    assert_eq!(
        serde_json::to_string(&out.results).unwrap(),
        plain,
        "a retried transient panic must not change any result byte"
    );
    assert_eq!(out.stats.replication_panics, 1);
    assert_eq!(out.stats.replication_retries, 1);
    assert_eq!(
        out.results
            .iter()
            .map(|r| r.failed_replications)
            .sum::<u64>(),
        0
    );
    std::fs::remove_file(&path).ok();
}
