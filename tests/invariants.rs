//! Scheduler invariants enforced over full traces via the observer hooks:
//! machines are never double-booked or used while down, replica counts
//! respect the threshold, FCFS-Excl really is exclusive, checkpoints are
//! monotone, and traces are deterministic.

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{
    simulate_observed, CheckingObserver, SimConfig, SimObserver, TraceRecorder,
};
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, GridConfig, Heterogeneity, MachineId};
use dgsched_workload::{BotId, BotType, Intensity, TaskId, WorkloadSpec};
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Shadows the simulator's state from observer callbacks alone and panics
/// on any inconsistency.
#[derive(Default)]
struct InvariantObserver {
    /// The policy's replication threshold (`None` = unlimited, FCFS-Excl).
    threshold: Option<u32>,
    /// Whether dispatches must always target the oldest active bag.
    exclusive: bool,
    machine_busy: HashMap<u32, (u32, u32)>,
    machine_down: HashSet<u32>,
    replica_counts: HashMap<(u32, u32), u32>,
    active_bags: Vec<u32>,
    completed_tasks: HashSet<(u32, u32)>,
    checkpoint_progress: HashMap<(u32, u32), f64>,
    dispatches: u64,
}

impl SimObserver for InvariantObserver {
    fn on_bag_arrival(&mut self, _now: SimTime, bag: BotId) {
        self.active_bags.push(bag.0);
    }

    fn on_bag_complete(&mut self, _now: SimTime, bag: BotId) {
        self.active_bags.retain(|&b| b != bag.0);
    }

    fn on_dispatch(
        &mut self,
        _now: SimTime,
        bag: BotId,
        task: TaskId,
        machine: MachineId,
        _is_replication: bool,
    ) {
        self.dispatches += 1;
        assert!(
            !self.machine_busy.contains_key(&machine.0),
            "machine {machine} double-booked"
        );
        assert!(
            !self.machine_down.contains(&machine.0),
            "dispatch onto failed machine {machine}"
        );
        assert!(
            !self.completed_tasks.contains(&(bag.0, task.0)),
            "dispatch of a completed task {bag}/{task}"
        );
        if self.exclusive {
            assert_eq!(
                Some(bag.0),
                self.active_bags.first().copied(),
                "FCFS-Excl dispatched a bag that is not the oldest"
            );
        }
        let count = self.replica_counts.entry((bag.0, task.0)).or_insert(0);
        *count += 1;
        if let Some(thr) = self.threshold {
            assert!(
                *count <= thr,
                "task {bag}/{task} exceeded threshold: {count}"
            );
        }
        self.machine_busy.insert(machine.0, (bag.0, task.0));
    }

    fn on_task_complete(&mut self, _now: SimTime, bag: BotId, task: TaskId, machine: MachineId) {
        let occupant = self.machine_busy.remove(&machine.0);
        assert_eq!(
            occupant,
            Some((bag.0, task.0)),
            "completion from wrong machine"
        );
        let count = self
            .replica_counts
            .get_mut(&(bag.0, task.0))
            .expect("counted");
        *count -= 1;
        assert!(
            self.completed_tasks.insert((bag.0, task.0)),
            "task {bag}/{task} completed twice"
        );
    }

    fn on_replica_killed(
        &mut self,
        _now: SimTime,
        bag: BotId,
        task: TaskId,
        machine: MachineId,
        _by_failure: bool,
    ) {
        let occupant = self.machine_busy.remove(&machine.0);
        assert_eq!(occupant, Some((bag.0, task.0)), "kill of wrong occupant");
        let count = self
            .replica_counts
            .get_mut(&(bag.0, task.0))
            .expect("counted");
        *count -= 1;
    }

    fn on_machine_fail(&mut self, _now: SimTime, machine: MachineId) {
        assert!(
            self.machine_down.insert(machine.0),
            "double failure of {machine}"
        );
    }

    fn on_machine_repair(&mut self, _now: SimTime, machine: MachineId) {
        assert!(
            self.machine_down.remove(&machine.0),
            "repair of healthy {machine}"
        );
        assert!(
            !self.machine_busy.contains_key(&machine.0),
            "machine {machine} repaired while still booked"
        );
    }

    fn on_checkpoint_saved(&mut self, _now: SimTime, bag: BotId, task: TaskId, work: f64) {
        let prev = self
            .checkpoint_progress
            .entry((bag.0, task.0))
            .or_insert(0.0);
        // Per-replica progress is monotone; across replicas the server keeps
        // the max, so the observed stream may dip but must stay positive.
        assert!(work > 0.0, "empty checkpoint for {bag}/{task}");
        *prev = prev.max(work);
    }
}

fn run_with_invariants(policy: PolicyKind, threshold: u32, seed: u64) -> InvariantObserver {
    let grid_cfg = GridConfig::paper(Heterogeneity::HET, Availability::LOW);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 20_000.0,
            app_size: 200_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::Medium,
        count: 8,
    }
    .generate(&grid_cfg, &mut rng);
    let mut obs = InvariantObserver {
        threshold: (policy != PolicyKind::FcfsExcl).then_some(threshold),
        exclusive: policy == PolicyKind::FcfsExcl,
        ..Default::default()
    };
    let cfg = SimConfig {
        replication_threshold: threshold,
        ..SimConfig::with_seed(seed)
    };
    let r = simulate_observed(&grid, &workload, policy.create_seeded(seed), &cfg, &mut obs);
    assert_eq!(
        r.completed, 8,
        "{policy} must complete under invariant checking"
    );
    assert_eq!(
        r.counters.replicas_launched, obs.dispatches,
        "observer saw every dispatch"
    );
    obs
}

#[test]
fn invariants_hold_for_all_policies() {
    for policy in PolicyKind::all_with_baselines() {
        for seed in [1, 2] {
            let obs = run_with_invariants(policy, 2, seed);
            assert!(
                obs.machine_busy.is_empty(),
                "{policy}: machines left booked at drain"
            );
            assert!(
                obs.active_bags.is_empty(),
                "{policy}: bags left active at drain"
            );
        }
    }
}

#[test]
fn invariants_hold_for_higher_thresholds() {
    for threshold in [1, 3, 4] {
        run_with_invariants(PolicyKind::FcfsShare, threshold, 3);
        run_with_invariants(PolicyKind::Rr, threshold, 3);
    }
}

/// The library's own `CheckingObserver` (the productised version of the
/// shadow state above) must agree that every policy is clean — including
/// on a failure-heavy platform with extra thresholds.
#[test]
fn library_checker_agrees() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HET, Availability::LOW);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 15_000.0,
            app_size: 150_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::High,
        count: 6,
    }
    .generate(&grid_cfg, &mut rng);
    for policy in PolicyKind::all_with_baselines() {
        let mut checker = if policy == PolicyKind::FcfsExcl {
            CheckingObserver::exclusive()
        } else {
            CheckingObserver::with_threshold(2)
        };
        let cfg = SimConfig::with_seed(6);
        let r = simulate_observed(
            &grid,
            &workload,
            policy.create_seeded(6),
            &cfg,
            &mut checker,
        );
        assert_eq!(r.completed, 6, "{policy}");
        checker.assert_clean();
        checker.assert_drained();
        assert_eq!(checker.dispatches, r.counters.replicas_launched, "{policy}");
    }
}

/// The correlated-outage path honours the same invariants: no machine is
/// double-failed, kills match occupants, and repairs restore machines that
/// were actually down.
#[test]
fn invariants_hold_under_correlated_outages() {
    use dgsched_des::dist::DistConfig;
    use dgsched_grid::{CheckpointConfig, GridConfig as GC, OutageConfig};
    let grid_cfg = GC {
        total_power: 200.0,
        heterogeneity: Heterogeneity::HET,
        availability: Availability::MED,
        checkpoint: CheckpointConfig::default(),
        outages: Some(OutageConfig {
            mtbo: 6_000.0,
            duration: DistConfig::NormalTrunc {
                mean: 1_200.0,
                sd: 200.0,
            },
            fraction: 0.6,
        }),
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 20_000.0,
            app_size: 120_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::Medium,
        count: 6,
    }
    .generate(&grid_cfg, &mut rng);
    for policy in [
        PolicyKind::FcfsShare,
        PolicyKind::LongIdle,
        PolicyKind::FcfsExcl,
    ] {
        let mut checker = if policy == PolicyKind::FcfsExcl {
            CheckingObserver::exclusive()
        } else {
            CheckingObserver::with_threshold(2)
        };
        let cfg = SimConfig::with_seed(9);
        let r = simulate_observed(
            &grid,
            &workload,
            policy.create_seeded(9),
            &cfg,
            &mut checker,
        );
        assert_eq!(r.completed, 6, "{policy} under outages");
        assert!(r.counters.outages > 0, "outages must fire");
        checker.assert_clean();
        checker.assert_drained();
    }
}

#[test]
fn traces_are_deterministic_and_time_ordered() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::MED);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 10_000.0,
            app_size: 100_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::Low,
        count: 5,
    }
    .generate(&grid_cfg, &mut rng);

    let record = || {
        let mut trace = TraceRecorder::new();
        let cfg = SimConfig::with_seed(4);
        simulate_observed(
            &grid,
            &workload,
            PolicyKind::LongIdle.create_seeded(4),
            &cfg,
            &mut trace,
        );
        trace
    };
    let a = record();
    let b = record();
    assert!(!a.is_empty());
    assert!(a.is_time_ordered(), "trace must be in event order");
    assert_eq!(a, b, "identical seeds must give identical event traces");
    // The trace must carry every lifecycle stage.
    let kinds: Vec<&str> = a
        .events
        .iter()
        .map(|e| match e {
            dgsched_core::sim::TraceEvent::Dispatch { .. } => "dispatch",
            dgsched_core::sim::TraceEvent::TaskComplete { .. } => "complete",
            dgsched_core::sim::TraceEvent::ReplicaKilled { .. } => "killed",
            dgsched_core::sim::TraceEvent::MachineFail { .. } => "fail",
            dgsched_core::sim::TraceEvent::MachineRepair { .. } => "repair",
            dgsched_core::sim::TraceEvent::BagArrival { .. } => "arrival",
            dgsched_core::sim::TraceEvent::BagComplete { .. } => "bag-complete",
            dgsched_core::sim::TraceEvent::CheckpointSaved { .. } => "checkpoint",
            dgsched_core::sim::TraceEvent::Outage { .. } => "outage",
        })
        .collect();
    for expected in [
        "dispatch",
        "complete",
        "arrival",
        "bag-complete",
        "fail",
        "repair",
    ] {
        assert!(kinds.contains(&expected), "trace lacks {expected} events");
    }
}

#[test]
fn trace_serde_round_trip() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
    let mut rng = rand::rngs::StdRng::seed_from_u64(10);
    let grid = grid_cfg.build(&mut rng);
    let workload = WorkloadSpec {
        bot_type: BotType {
            granularity: 5_000.0,
            app_size: 25_000.0,
            jitter: 0.5,
        },
        intensity: Intensity::Low,
        count: 2,
    }
    .generate(&grid_cfg, &mut rng);
    let mut trace = TraceRecorder::new();
    let cfg = SimConfig::with_seed(1);
    simulate_observed(&grid, &workload, PolicyKind::Rr.create(), &cfg, &mut trace);
    let json = serde_json::to_string(&trace).unwrap();
    let back: TraceRecorder = serde_json::from_str(&json).unwrap();
    assert_eq!(trace, back);
}
