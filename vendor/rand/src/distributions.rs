//! Distributions: the `Distribution` trait, the `Standard` distribution
//! and uniform range sampling (`gen_range` support).

use crate::Rng;
use std::marker::PhantomData;

/// Types that can produce values of type `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;

    /// Turns `rng` into an iterator of samples from `self`.
    fn sample_iter<R>(self, rng: R) -> DistIter<Self, R, T>
    where
        R: Rng,
        Self: Sized,
    {
        DistIter {
            distr: self,
            rng,
            _marker: PhantomData,
        }
    }
}

impl<'a, T, D: Distribution<T> + ?Sized> Distribution<T> for &'a D {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// Iterator of samples (see [`Distribution::sample_iter`]).
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    distr: D,
    rng: R,
    _marker: PhantomData<T>,
}

impl<D: Distribution<T>, R: Rng, T> Iterator for DistIter<D, R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(self.distr.sample(&mut self.rng))
    }
}

/// The "natural" distribution of a type: uniform bits for integers,
/// uniform `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits → [0, 1) with 2^-53 spacing.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling over ranges — the machinery behind `Rng::gen_range`.
pub mod uniform {
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that `Rng::gen_range` can sample from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Maps 64 uniform bits onto `[0, span)` by widening multiply. The
    /// modulo bias is below 2^-64 · span — irrelevant at the spans this
    /// workspace uses, and the mapping is deterministic, which is what the
    /// simulator actually requires.
    #[inline]
    pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + bounded_u64(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    if lo == <$t>::MIN && hi == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                    let span = (hi as u64).wrapping_sub(lo as u64) + 1;
                    lo + bounded_u64(rng, span) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize);

    macro_rules! signed_int_range {
        ($($t:ty : $u:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as $u).wrapping_sub(lo as $u) as u64 + 1;
                    lo.wrapping_add(bounded_u64(rng, span) as $t)
                }
            }
        )*};
    }
    signed_int_range!(i32: u32, i64: u64);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty float range");
                    let u = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    self.start + u * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty float range");
                    // Scale 53 bits over [0, 1]; the closed upper bound is
                    // reachable with probability 2^-53.
                    let u = (rng.next_u64() >> 11) as $t
                        * (1.0 / ((1u64 << 53) - 1) as $t);
                    lo + u * (hi - lo)
                }
            }
        )*};
    }
    float_range!(f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(2.3..=17.7);
            assert!((2.3..=17.7).contains(&x));
        }
    }

    #[test]
    fn sample_iter_matches_fresh_draws() {
        let a: Vec<u32> = StdRng::seed_from_u64(5)
            .sample_iter(Standard)
            .take(4)
            .collect();
        let mut r = StdRng::seed_from_u64(5);
        let b: Vec<u32> = (0..4).map(|_| r.gen::<u32>()).collect();
        assert_eq!(a, b);
    }
}
