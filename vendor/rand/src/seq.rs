//! Sequence helpers (minimal `SliceRandom`).

use crate::Rng;

/// Random selection from slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}
