//! Offline stand-in for the `rand` crate (0.8-compatible surface).
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of `rand` it actually uses: `StdRng` (here xoshiro256\*\*
//! seeded through SplitMix64 — *not* bit-compatible with upstream's
//! ChaCha12, but a high-quality deterministic generator), the `RngCore` /
//! `SeedableRng` / `Rng` traits, integer and float `gen_range`, and the
//! `Distribution` machinery that `rand_distr` builds on.
//!
//! Determinism contract: a given seed produces the same stream on every
//! platform and every build of this vendored crate. Golden-trace
//! fingerprints recorded in this repository assume *this* generator.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::Distribution;

/// Core of every generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniform bits (low half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for the real crate; kept here for
    /// API compatibility).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, stretching it with
    /// SplitMix64 exactly like upstream `rand_core`.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut z = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = z;
            s = (s ^ (s >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s = (s ^ (s >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            let bytes = s.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of type `T` from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }

    /// Converts the generator into an iterator of samples.
    fn sample_iter<T, D>(self, distr: D) -> distributions::DistIter<D, Self, T>
    where
        D: Distribution<T>,
        Self: Sized,
    {
        distr.sample_iter(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The crate prelude (subset).
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
