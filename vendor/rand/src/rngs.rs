//! Named generators. `StdRng` is xoshiro256** (Blackman & Vigna), chosen
//! for speed, tiny state and excellent statistical quality. It is **not**
//! bit-compatible with upstream rand's ChaCha12-based `StdRng`; all golden
//! values in this repository are recorded against this generator.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator (xoshiro256**).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(b);
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                1,
            ];
        }
        StdRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut r = StdRng::seed_from_u64(2);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
