//! Offline stand-in for `proptest`.
//!
//! A deterministic random-case runner with the subset of the API this
//! workspace's tests use: range/tuple/`Just`/`prop_map`/`prop_oneof`
//! strategies, `proptest::collection::vec`, the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, and the `prop_assert*`
//! macros. No shrinking: a failing case reports its inputs via the
//! assertion message and the fixed seed makes every run reproducible.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a test case fails (returned by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Executes `cases` deterministic random cases, panicking on the first
/// failure. Used by the expansion of [`proptest!`].
pub fn run_cases<F>(config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Fixed master seed: failures reproduce across runs.
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15);
    for i in 0..config.cases {
        if let Err(e) = case(&mut rng) {
            panic!("proptest case {i} failed: {e}");
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::*;

    /// Generates random values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// A union over non-empty `alternatives`.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(
                !alternatives.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for vectors with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is uniform in `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob import: strategies, config and macros.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
    };
}

pub use strategy::Strategy;

/// Asserts a condition inside a `proptest!` body; failures abort only the
/// current case with a descriptive error.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                __l,
                __r,
                stringify!($lhs),
                stringify!($rhs)
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the configured number of random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($config, |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                __outcome
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u64..10, y in -2.0f64..2.0) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert_eq!(xs.iter().filter(|&&v| v >= 5).count(), 0);
        }

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0u64..3).prop_map(|x| x as i64),
            Just(-1i64),
        ]) {
            prop_assert!((-1..3).contains(&v));
        }
    }
}
