//! Offline stand-in for `parking_lot`, backed by `std::sync`. The visible
//! differences from std that callers rely on are preserved: `lock()`/
//! `read()`/`write()` return the guard directly instead of a `Result`
//! (recovering from poisoning, which upstream parking_lot does not have),
//! and `try_lock`-style probes return `Option` rather than
//! `Result<_, TryLockError>`. The sweep runner leans on `try_lock` for
//! its non-blocking progress reporter, so these locks see genuine
//! cross-thread contention — the tests below exercise exactly that.
//!
//! # The `lockcheck` feature
//!
//! With `--features lockcheck`, every `Mutex`/`RwLock` acquisition is
//! routed through the lock-order witness in [`lockcheck`]: per-thread
//! held-lock sets plus a global acquisition-order graph with incremental
//! cycle detection. A hold-and-wait cycle (the shape of the PR-5
//! steal-loop deadlock) panics **deterministically, before blocking**,
//! naming both acquisition sites — instead of hanging until someone
//! reaches for futex archaeology. Without the feature every hook
//! compiles away: guard types degrade to plain `std::sync` aliases and
//! the lock structs carry no extra field, so the passivity argument is
//! the same as `dgsched-obs`'s — the off build is byte-for-byte the seed
//! behavior, asserted by `tests/lockcheck.rs` in `dgsched-core`.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

#[cfg(feature = "lockcheck")]
pub mod lockcheck;

use std::sync::TryLockError;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u64,
    inner: std::sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
#[cfg(not(feature = "lockcheck"))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Guard type returned by [`Mutex::lock`]: the std guard plus the
/// witness's release token (dropped after the unlock, updating the
/// thread's held-lock set).
#[cfg(feature = "lockcheck")]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    _witness: lockcheck::HeldToken,
}

#[cfg(feature = "lockcheck")]
impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockcheck")]
            id: lockcheck::new_lock_id(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            // Witness first: a would-be deadlock panics instead of
            // blocking forever.
            lockcheck::before_blocking_acquire(self.id, site);
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            }
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            self.inner.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Acquires the lock only if it is free right now. `None` means some
    /// other thread holds it — never that the lock is poisoned.
    ///
    /// Under `lockcheck`, a successful probe joins the held set (later
    /// blocking acquisitions record edges from it) but records no edge
    /// itself: a non-blocking probe cannot complete a hold-and-wait.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            inner.map(|inner| MutexGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            })
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            inner
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// True when some thread currently holds the lock. Inherently racy:
    /// only useful for diagnostics, never for synchronisation.
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_) | Err(TryLockError::Poisoned(_)) => false,
            Err(TryLockError::WouldBlock) => true,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard type returned by [`RwLock::read`].
#[cfg(not(feature = "lockcheck"))]
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
#[cfg(not(feature = "lockcheck"))]
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Guard type returned by [`RwLock::read`] under `lockcheck`.
#[cfg(feature = "lockcheck")]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    _witness: lockcheck::HeldToken,
}

/// Guard type returned by [`RwLock::write`] under `lockcheck`.
#[cfg(feature = "lockcheck")]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    _witness: lockcheck::HeldToken,
}

#[cfg(feature = "lockcheck")]
impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

#[cfg(feature = "lockcheck")]
impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A read–write lock whose accessors never return poison errors.
///
/// Under `lockcheck`, readers and writers map onto one witness node:
/// coarse (reader/reader order is harmless) but sound — reader/writer
/// order inversions are real deadlock recipes and are reported.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    id: u64,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockcheck")]
            id: lockcheck::new_lock_id(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            lockcheck::before_blocking_acquire(self.id, site);
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            }
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            self.inner.read().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Acquires an exclusive write guard.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            lockcheck::before_blocking_acquire(self.id, site);
            let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            }
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            self.inner.write().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Acquires a read guard only if no writer holds or is taking the lock.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let inner = match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            inner.map(|inner| RwLockReadGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            })
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            inner
        }
    }

    /// Acquires a write guard only if the lock is entirely free.
    #[cfg_attr(feature = "lockcheck", track_caller)]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let inner = match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        };
        #[cfg(feature = "lockcheck")]
        {
            let site = std::panic::Location::caller();
            inner.map(|inner| RwLockWriteGuard {
                inner,
                _witness: lockcheck::HeldToken::acquired(self.id, site),
            })
        }
        #[cfg(not(feature = "lockcheck"))]
        {
            inner
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
            assert!(m.is_locked());
        }
        assert!(!m.is_locked());
        *m.try_lock().expect("free now") += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(vec![1, 2]);
        m.get_mut().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_counts_correctly_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), THREADS * PER_THREAD);
    }

    #[test]
    fn mutex_recovers_from_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // lock(), try_lock() and is_locked() all see through the poison.
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.try_lock().map(|g| *g), Some(7));
        assert!(!m.is_locked());
    }

    #[test]
    fn rwlock_round_trip_and_probes() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.try_read().expect("readers share");
            assert_eq!((*r1, *r2), (5, 5));
            assert!(l.try_write().is_none(), "readers block writers");
        }
        *l.try_write().expect("free now") = 6;
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "writer blocks readers");
        }
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_get_mut() {
        let mut l = RwLock::new(String::from("a"));
        l.get_mut().push('b');
        assert_eq!(*l.read(), "ab");
    }
}

#[cfg(all(test, feature = "lockcheck"))]
mod lockcheck_tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    /// The witness's core promise: opposite acquisition orders panic at
    /// the second acquisition, deterministically, naming both sites.
    #[test]
    fn opposite_orders_panic_with_both_sites() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock(); // establishes a → b
            let _gb = b.lock();
        }
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b → a: cycle
        }))
        .expect_err("the inverted order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock acquisition order cycle"), "{msg}");
        assert!(
            msg.contains("lockcheck.rs") || msg.contains("lib.rs"),
            "{msg}"
        );
        // Both this test's acquisition sites are named.
        let here = "vendor/parking_lot/src/lib.rs";
        let named = msg.matches(here).count();
        assert!(named >= 2, "expected ≥2 sites from {here} in:\n{msg}");
    }

    #[test]
    fn consistent_orders_never_panic() {
        let a = Arc::new(Mutex::new(0));
        let b = Arc::new(Mutex::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = a.clone();
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        let ga = a.lock();
                        let mut gb = b.lock();
                        *gb += *ga;
                    }
                });
            }
        });
        assert!(*b.lock() >= 0);
    }

    #[test]
    fn recursive_acquisition_panics_as_self_cycle() {
        let m = Mutex::new(());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g1 = m.lock();
            let _g2 = m.lock(); // would deadlock on every schedule
        }))
        .expect_err("recursive lock must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("recursive acquisition"), "{msg}");
    }

    #[test]
    fn try_lock_probes_record_no_ordering_edges() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.try_lock().expect("free"); // no edge a → b
        }
        // The opposite blocking order is therefore still legal.
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    fn guards_leave_the_held_set_on_drop() {
        let m = Mutex::new(());
        assert_eq!(lockcheck::held_count(), 0);
        {
            let _g = m.lock();
            assert_eq!(lockcheck::held_count(), 1);
        }
        assert_eq!(lockcheck::held_count(), 0);
    }

    #[test]
    fn rwlock_read_then_write_inversion_is_reported() {
        let a = RwLock::new(());
        let b = Mutex::new(());
        {
            let _ga = a.read();
            let _gb = b.lock(); // a → b
        }
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.write(); // b → a: cycle across lock kinds
        }))
        .expect_err("reader/writer inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("cycle"), "{msg}");
    }
}
