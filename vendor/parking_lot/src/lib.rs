//! Offline stand-in for `parking_lot`, backed by `std::sync`. The visible
//! differences from std that callers rely on are preserved: `lock()`/
//! `read()`/`write()` return the guard directly instead of a `Result`
//! (recovering from poisoning, which upstream parking_lot does not have),
//! and `try_lock`-style probes return `Option` rather than
//! `Result<_, TryLockError>`. The sweep runner leans on `try_lock` for
//! its non-blocking progress reporter, so these locks see genuine
//! cross-thread contention — the tests below exercise exactly that.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

use std::sync::TryLockError;

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock only if it is free right now. `None` means some
    /// other thread holds it — never that the lock is poisoned.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }

    /// True when some thread currently holds the lock. Inherently racy:
    /// only useful for diagnostics, never for synchronisation.
    pub fn is_locked(&self) -> bool {
        match self.0.try_lock() {
            Ok(_) | Err(TryLockError::Poisoned(_)) => false,
            Err(TryLockError::WouldBlock) => true,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A read–write lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires a read guard only if no writer holds or is taking the lock.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Acquires a write guard only if the lock is entirely free.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the `&mut` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
            assert!(m.is_locked());
        }
        assert!(!m.is_locked());
        *m.try_lock().expect("free now") += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(vec![1, 2]);
        m.get_mut().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_counts_correctly_under_contention() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 1000;
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(m.into_inner(), THREADS * PER_THREAD);
    }

    #[test]
    fn mutex_recovers_from_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(7));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // lock(), try_lock() and is_locked() all see through the poison.
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.try_lock().map(|g| *g), Some(7));
        assert!(!m.is_locked());
    }

    #[test]
    fn rwlock_round_trip_and_probes() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.try_read().expect("readers share");
            assert_eq!((*r1, *r2), (5, 5));
            assert!(l.try_write().is_none(), "readers block writers");
        }
        *l.try_write().expect("free now") = 6;
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "writer blocks readers");
        }
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn rwlock_get_mut() {
        let mut l = RwLock::new(String::from("a"));
        l.get_mut().push('b');
        assert_eq!(*l.read(), "ab");
    }
}
