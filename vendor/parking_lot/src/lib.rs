//! Offline stand-in for `parking_lot`, backed by `std::sync`. The visible
//! difference from std that callers rely on — `lock()` returning the guard
//! directly instead of a `Result` — is preserved by recovering from
//! poisoning.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A read–write lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
