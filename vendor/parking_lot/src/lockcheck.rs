//! The lock-order witness: turns a *potential* hold-and-wait cycle into
//! a deterministic panic with the acquisition sites named.
//!
//! Motivation: the PR-5 steal-loop deadlock — two pool workers each
//! holding their own queue mutex while blocking on the other's — shipped
//! as a hang that needed futex archaeology to diagnose. The witness
//! makes that class of bug loud and immediate: it maintains, per thread,
//! the ordered set of locks currently held, and globally, a
//! lock-acquisition-order graph. Whenever a thread blocks on lock `B`
//! while holding lock `A`, the edge `A → B` (with both acquisition
//! `Location`s) is recorded; if `B ⇝ A` is already reachable, the two
//! orders can interleave into a deadlock on some schedule, and the
//! witness panics **before blocking** — so even a schedule that *would*
//! have deadlocked reports instead of hanging.
//!
//! Semantics, deliberately conservative:
//!
//! * nodes are lock **instances** (a monotonically increasing id
//!   assigned at construction, never reused), so unrelated locks whose
//!   allocations alias addresses can never create false cycles;
//! * edges persist for the life of the process: ordering is a global
//!   protocol, not a momentary fact — `A → B` observed now and `B → A`
//!   observed an hour later is still a deadlock recipe;
//! * a successful `try_lock` adds the lock to the held set (later
//!   blocking acquisitions will record edges *from* it) but records no
//!   edge *into* itself and never panics: a non-blocking probe cannot
//!   complete a hold-and-wait cycle;
//! * `RwLock` readers and writers map onto one node — coarse (two
//!   readers cannot deadlock each other) but sound for cycle detection,
//!   and this tree never takes a lock recursively;
//! * re-acquiring a lock already held by the same thread panics as a
//!   self-cycle (for these non-reentrant primitives it is a guaranteed
//!   deadlock).
//!
//! The witness's own state lives behind a `std::sync::Mutex` (never the
//! instrumented type, so it cannot witness itself) and every access
//! recovers from poisoning: a panic raised *by* the witness must not
//! wedge the next check.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Next lock-instance id. Starts at 1 so 0 can never name a real lock.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// The global acquisition-order graph: `from → {to → (from_site, to_site)}`.
/// Sites are those of the **first** observation of the edge — stable,
/// deterministic names for the report. `BTreeMap` keeps every traversal
/// (and therefore every cycle report) in deterministic order.
static GRAPH: Mutex<BTreeMap<u64, BTreeMap<u64, Edge>>> = Mutex::new(BTreeMap::new());

#[derive(Clone, Copy)]
struct Edge {
    from_site: &'static Location<'static>,
    to_site: &'static Location<'static>,
}

thread_local! {
    /// Locks this thread currently holds, in acquisition order.
    static HELD: RefCell<Vec<(u64, &'static Location<'static>)>> = const { RefCell::new(Vec::new()) };
}

/// Allocates the id for a new lock instance.
pub(crate) fn new_lock_id() -> u64 {
    NEXT_ID.fetch_add(1, Ordering::Relaxed)
}

fn graph() -> std::sync::MutexGuard<'static, BTreeMap<u64, BTreeMap<u64, Edge>>> {
    GRAPH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is `to` reachable from `from` over recorded edges? Iterative DFS in
/// deterministic (BTreeMap) order; `path` returns the node sequence
/// `from ⇝ to` when reachable.
fn find_path(g: &BTreeMap<u64, BTreeMap<u64, Edge>>, from: u64, to: u64) -> Option<Vec<u64>> {
    let mut stack = vec![(from, vec![from])];
    let mut visited = std::collections::BTreeSet::new();
    while let Some((node, path)) = stack.pop() {
        if node == to {
            return Some(path);
        }
        if !visited.insert(node) {
            continue;
        }
        if let Some(succ) = g.get(&node) {
            // Reverse so the smallest successor is explored first: the
            // reported cycle is the lexicographically first one.
            for &next in succ.keys().rev() {
                if !visited.contains(&next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    None
}

/// Records that the current thread is about to **block** on `(id, site)`.
/// Panics (instead of blocking) when the acquisition would establish an
/// order contradicting one already on record.
pub(crate) fn before_blocking_acquire(id: u64, site: &'static Location<'static>) {
    HELD.with(|h| {
        let held = h.borrow();
        if held.is_empty() {
            return;
        }
        if let Some(&(_, held_site)) = held.iter().find(|&&(hid, _)| hid == id) {
            panic!(
                "lockcheck: recursive acquisition of lock#{id}\n  \
                 first acquired at {held_site}\n  re-acquired at {site}\n  \
                 (non-reentrant lock: this deadlocks on every schedule)"
            );
        }
        let mut g = graph();
        for &(held_id, held_site) in held.iter() {
            // About to add held_id → id. A recorded path id ⇝ held_id
            // means the opposite order exists somewhere: cycle.
            if let Some(path) = find_path(&g, id, held_id) {
                let report = render_cycle(&g, &path, held_id, id, held_site, site);
                drop(g);
                panic!("{report}");
            }
            g.entry(held_id).or_default().entry(id).or_insert(Edge {
                from_site: held_site,
                to_site: site,
            });
        }
    });
}

/// Records a successful (already granted) acquisition.
pub(crate) fn on_acquired(id: u64, site: &'static Location<'static>) {
    HELD.with(|h| h.borrow_mut().push((id, site)));
}

/// Records a release (guard drop). Removal is by id from the back:
/// guards can drop out of acquisition order.
pub(crate) fn on_released(id: u64) {
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&(hid, _)| hid == id) {
            held.remove(pos);
        }
    });
}

/// Renders the deterministic cycle report, naming both acquisition
/// sites of the offending edge and every recorded edge closing the loop.
fn render_cycle(
    g: &BTreeMap<u64, BTreeMap<u64, Edge>>,
    path: &[u64],
    held_id: u64,
    acq_id: u64,
    held_site: &'static Location<'static>,
    acq_site: &'static Location<'static>,
) -> String {
    let mut out = String::from(
        "lockcheck: lock acquisition order cycle (potential hold-and-wait deadlock)\n",
    );
    out.push_str(&format!(
        "  this thread: holds lock#{held_id} (acquired at {held_site}), wants lock#{acq_id} (at {acq_site})\n"
    ));
    out.push_str("  contradicting the recorded order:\n");
    for pair in path.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if let Some(e) = g.get(&a).and_then(|m| m.get(&b)) {
            out.push_str(&format!(
                "    lock#{a} (held at {}) -> lock#{b} (acquired at {})\n",
                e.from_site, e.to_site
            ));
        }
    }
    out.push_str(
        "  some schedule interleaves these acquisitions into a deadlock; \
         fix by acquiring in one global order (or drop the first guard before \
         taking the second, as the PR-5 steal loop now does)",
    );
    out
}

/// RAII token held inside an instrumented guard; its drop is the
/// release record.
pub(crate) struct HeldToken {
    id: u64,
}

impl HeldToken {
    /// Records the acquisition and returns the release token.
    pub(crate) fn acquired(id: u64, site: &'static Location<'static>) -> Self {
        on_acquired(id, site);
        HeldToken { id }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        on_released(self.id);
    }
}

/// Test-visible introspection: number of locks the current thread holds.
pub fn held_count() -> usize {
    HELD.with(|h| h.borrow().len())
}
