//! Offline stand-in for `rayon`, backed by a real work-stealing pool.
//!
//! `par_iter`/`into_par_iter` expose the upstream entry points, but the
//! execution model is a self-contained chunked work-stealing pool over
//! `std::thread::scope`: the input is materialised, split into small
//! index-tagged chunks, dealt to per-worker deques, and workers steal
//! from each other once their own deque drains. `map(..).collect()` is
//! **order-preserving** — results are reassembled by chunk index, so the
//! output is identical to the sequential run whatever the interleaving.
//!
//! Pool width resolution, in decreasing precedence:
//!
//! 1. [`with_num_threads`] — a scoped override that workers inherit, so
//!    nested `par_iter` calls under the closure see the same width;
//! 2. `DGSCHED_THREADS`, then `RAYON_NUM_THREADS` (a value of `0` or
//!    anything unparsable falls through to the next source);
//! 3. `std::thread::available_parallelism()`.
//!
//! A width of 1 short-circuits to exactly the old sequential path: no
//! threads are spawned and the closure runs on the caller in input order.
//! A panic inside a worker aborts the remaining chunks and is re-raised
//! on the calling thread with its original payload, like upstream rayon.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
// The pool's queue locks come from the vendored parking_lot so the
// `lockcheck` lock-order witness covers the steal loop — the site of the
// PR-5 hold-and-wait deadlock. parking_lot's lock() recovers poisoning
// and returns the guard directly (no unwrap).
use parking_lot::Mutex;

thread_local! {
    /// Scoped width override; inherited by pool workers so nested
    /// `par_iter` calls resolve to the same width as their parent.
    static WIDTH_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

fn env_width() -> Option<usize> {
    for key in ["DGSCHED_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(v) = std::env::var(key) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Some(n);
                }
            }
        }
    }
    None
}

/// The pool width `par_iter` executions will use right now.
pub fn current_num_threads() -> usize {
    WIDTH_OVERRIDE
        .with(|w| w.get())
        .or_else(env_width)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `f` with the pool width pinned to `n` (clamped to ≥ 1),
/// restoring the previous setting afterwards. The override takes
/// precedence over the environment and propagates into pool workers, so
/// nested parallel calls under `f` use the same width. Vendored
/// extension (upstream expresses this through `ThreadPool::install`).
pub fn with_num_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            WIDTH_OVERRIDE.with(|w| w.set(prev));
        }
    }
    let _restore = Restore(WIDTH_OVERRIDE.with(|w| w.replace(Some(n.max(1)))));
    f()
}

/// One unit of stealable work: a run of consecutive input items.
struct Chunk<T> {
    start: usize,
    items: Vec<T>,
}

/// Order-preserving parallel map: the engine under every adapter.
///
/// Panics from `f` are re-raised on the caller with the original payload
/// once in-flight chunks finish; unstarted chunks are abandoned.
fn parallel_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n.max(1));
    if width <= 1 {
        // Exactly the historical sequential path: caller thread, input order.
        return items.into_iter().map(f).collect();
    }

    // Small chunks (~4 per worker) so stealing can rebalance uneven work.
    let chunk_len = n.div_ceil(width * 4).max(1);
    let mut chunks: Vec<Chunk<T>> = Vec::new();
    let mut start = 0usize;
    let mut iter = items.into_iter();
    while start < n {
        let len = chunk_len.min(n - start);
        let items: Vec<T> = iter.by_ref().take(len).collect();
        chunks.push(Chunk { start, items });
        start += len;
    }

    // Deal contiguous runs of chunks to per-worker deques for locality.
    let mut queues: Vec<Mutex<VecDeque<Chunk<T>>>> =
        (0..width).map(|_| Mutex::new(VecDeque::new())).collect();
    let per_worker = chunks.len().div_ceil(width);
    for (i, chunk) in chunks.into_iter().enumerate() {
        let w = (i / per_worker).min(width - 1);
        queues[w].get_mut().push_back(chunk);
    }

    let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::new());
    let aborted = AtomicBool::new(false);
    let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let inherited_width = WIDTH_OVERRIDE.with(|w| w.get());

    std::thread::scope(|scope| {
        for me in 0..width {
            let queues = &queues;
            let done = &done;
            let aborted = &aborted;
            let panic_payload = &panic_payload;
            scope.spawn(move || {
                // Nested par_iter calls inside `f` see the caller's width.
                WIDTH_OVERRIDE.with(|w| w.set(inherited_width));
                loop {
                    if aborted.load(Ordering::Acquire) {
                        return;
                    }
                    // Own deque first (LIFO side), then steal from the
                    // front of the others' deques. The own-queue guard MUST
                    // drop before the steal loop: chaining `.or_else(..)`
                    // onto the locked pop keeps the guard alive across the
                    // steal (temporary lifetime extension), and two workers
                    // stealing at once then hold-and-wait on each other's
                    // queues — a circular deadlock.
                    let own = queues[me].lock().pop_back();
                    let chunk = own.or_else(|| {
                        (1..width).find_map(|d| queues[(me + d) % width].lock().pop_front())
                    });
                    let Some(chunk) = chunk else { return };
                    let start = chunk.start;
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        chunk.items.into_iter().map(f).collect::<Vec<U>>()
                    }));
                    match out {
                        Ok(out) => done.lock().push((start, out)),
                        Err(payload) => {
                            let mut slot = panic_payload.lock();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                            aborted.store(true, Ordering::Release);
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(payload) = panic_payload.into_inner() {
        resume_unwind(payload);
    }
    let mut parts = done.into_inner();
    parts.sort_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, part) in parts {
        out.extend(part);
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// Runs `a` and `b`, potentially in parallel, returning both results.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let inherited = WIDTH_OVERRIDE.with(|w| w.get());
    std::thread::scope(|scope| {
        let hb = scope.spawn(move || {
            WIDTH_OVERRIDE.with(|w| w.set(inherited));
            b()
        });
        let ra = a();
        match hb.join() {
            Ok(rb) => (ra, rb),
            Err(payload) => resume_unwind(payload),
        }
    })
}

/// A materialised parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (executed on the pool at the sink).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Calls `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, &|x| f(x));
    }

    /// Collects the items in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    /// Sums the items in input order.
    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    /// Number of items.
    pub fn count(self) -> usize {
        self.items.len()
    }
}

/// A pending order-preserving parallel map.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    /// Fuses a second map stage onto this one.
    pub fn map<V, G>(self, g: G) -> ParMap<T, impl Fn(T) -> V + Sync>
    where
        V: Send,
        G: Fn(U) -> V + Sync,
    {
        let f = self.f;
        ParMap {
            items: self.items,
            f: move |x| g(f(x)),
        }
    }

    /// Runs the map on the pool, collecting results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map on the pool for its side effects.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(U) + Sync,
    {
        let f = self.f;
        parallel_map(self.items, &|x| g(f(x)));
    }

    /// Runs the map on the pool and sums the results in input order.
    pub fn sum<S: std::iter::Sum<U>>(self) -> S {
        parallel_map(self.items, &self.f).into_iter().sum()
    }
}

/// The parallel-iterator conversion traits.
pub mod prelude {
    use super::ParIter;

    /// Conversion into an owned parallel iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Consumes `self` into a parallel iterator.
        fn into_par_iter(self) -> ParIter<Self::Item>;
    }

    impl<I: IntoIterator> IntoParallelIterator for I
    where
        I::Item: Send,
    {
        type Item = I::Item;

        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }

    /// Borrowing version: `x.par_iter()` where `&x` is iterable.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item: Send + 'a;
        /// Iterates over `&self`.
        fn par_iter(&'a self) -> ParIter<Self::Item>;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
        <&'a C as IntoIterator>::Item: Send,
    {
        type Item = <&'a C as IntoIterator>::Item;

        fn par_iter(&'a self) -> ParIter<Self::Item> {
            ParIter {
                items: self.into_iter().collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shims_behave_like_iterators() {
        let doubled: Vec<i32> = (0..4).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn map_collect_preserves_order_under_threads() {
        for width in [1, 2, 3, 4, 8] {
            let out: Vec<u64> = with_num_threads(width, || {
                (0u64..1000).into_par_iter().map(|x| x * x).collect()
            });
            let expect: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
            assert_eq!(out, expect, "width {width}");
        }
    }

    #[test]
    fn uneven_work_is_stolen_and_still_ordered() {
        // Front-loaded heavy items exercise the stealing path.
        let out: Vec<u64> = with_num_threads(4, || {
            (0u64..64)
                .into_par_iter()
                .map(|x| {
                    let spins = if x < 8 { 20_000 } else { 10 };
                    let mut acc = x;
                    for i in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    std::hint::black_box(acc);
                    x
                })
                .collect()
        });
        assert_eq!(out, (0u64..64).collect::<Vec<u64>>());
    }

    #[test]
    fn chained_maps_fuse() {
        let out: Vec<String> = with_num_threads(3, || {
            (0..10)
                .into_par_iter()
                .map(|x| x + 1)
                .map(|x| x * 2)
                .map(|x| format!("v{x}"))
                .collect()
        });
        assert_eq!(out[9], "v20");
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn width_one_runs_on_the_caller_in_order() {
        let caller = std::thread::current().id();
        let order = Mutex::new(Vec::new());
        with_num_threads(1, || {
            (0..16).into_par_iter().for_each(|i| {
                assert_eq!(std::thread::current().id(), caller);
                order.lock().push(i);
            });
        });
        assert_eq!(order.into_inner(), (0..16).collect::<Vec<i32>>());
    }

    #[test]
    fn panics_propagate_with_payload() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                let _: Vec<i32> = (0..100)
                    .into_par_iter()
                    .map(|x| if x == 37 { panic!("boom at {x}") } else { x })
                    .collect();
            })
        });
        let payload = result.expect_err("worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 37"), "payload lost: {msg:?}");
    }

    #[test]
    fn nested_par_iter_inherits_width() {
        let seen = AtomicUsize::new(0);
        with_num_threads(3, || {
            (0..4).into_par_iter().for_each(|_| {
                seen.fetch_max(current_num_threads(), Ordering::Relaxed);
                let inner: Vec<i32> = (0..8).into_par_iter().map(|x| x).collect();
                assert_eq!(inner, (0..8).collect::<Vec<i32>>());
            });
        });
        assert_eq!(seen.load(Ordering::Relaxed), 3, "workers inherit override");
        assert!(
            WIDTH_OVERRIDE.with(|w| w.get()).is_none(),
            "override restored"
        );
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = with_num_threads(2, || join(|| 1 + 1, || "two"));
        assert_eq!((a, b), (2, "two"));
        let err =
            std::panic::catch_unwind(|| with_num_threads(2, || join(|| 0, || panic!("right"))));
        assert!(err.is_err());
    }

    #[test]
    fn concurrent_stealing_cannot_deadlock() {
        // Regression: the own-queue guard must drop before the steal loop.
        // At width 2 both workers sit in the steal path together near the
        // end of every map; if either still holds its (empty) own queue
        // while probing the other's, the two hold-and-wait in a cycle and
        // this test hangs. Many short maps make the window easy to hit.
        for round in 0..500u32 {
            let out: Vec<u32> = with_num_threads(2, || {
                (0..64u32).into_par_iter().map(|x| x ^ round).collect()
            });
            assert_eq!(out.len(), 64);
            assert_eq!(out[0], round);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> =
            with_num_threads(4, || Vec::<i32>::new().into_par_iter().map(|x| x).collect());
        assert!(empty.is_empty());
        let one: Vec<i32> = with_num_threads(4, || vec![7].into_par_iter().map(|x| x).collect());
        assert_eq!(one, vec![7]);
    }
}
