//! Offline stand-in for `rayon`.
//!
//! `par_iter`/`into_par_iter` simply return the corresponding sequential
//! iterators; callers keep the full `std::iter::Iterator` combinator
//! surface (`map`, `collect`, …) and identical results, just without the
//! thread pool. Determinism-sensitive code in this workspace never relied
//! on parallel ordering anyway.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

/// The parallel-iterator traits, sequentially implemented.
pub mod prelude {
    /// Conversion into a "parallel" (here: sequential) iterator.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Consumes `self` into an iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Borrowing version: `x.par_iter()` where `&x` is iterable.
    pub trait IntoParallelRefIterator<'a> {
        /// Item type.
        type Item;
        /// Iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Iterates over `&self`.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Item = <&'a C as IntoIterator>::Item;
        type Iter = <&'a C as IntoIterator>::IntoIter;

        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn shims_behave_like_iterators() {
        let doubled: Vec<i32> = (0..4).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6]);
        let v = vec![1, 2, 3];
        let sum: i32 = v.par_iter().sum();
        assert_eq!(sum, 6);
    }
}
