//! Offline stand-in for `serde_json` over the vendored `serde` value model.
//!
//! Behaviour intentionally mirrors upstream where the workspace can observe
//! it: compact output has no whitespace, pretty output indents by two
//! spaces, non-finite floats serialize as `null`, `u64` values round-trip
//! exactly, and floats print via Rust's shortest-roundtrip formatting
//! (`1.0` stays `1.0`, not `1`).

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Convenience alias used by the public functions.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::Error> for Error {
    fn from(e: serde::de::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out, Some("  "), 0);
    Ok(out)
}

/// Serializes `value` as a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::deserialize_value(&value).map_err(Error::from)
}

/// Deserializes a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => write_float(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, level: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(unit);
        }
    }
}

fn write_float(x: f64, out: &mut String) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip formatting: integral values
        // keep a ".0" suffix and huge magnitudes use exponent notation,
        // both of which are valid JSON and match upstream's ryu output
        // closely enough for this workspace.
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through untouched; back
                    // up and copy the whole char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::I64(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("2.5e3").unwrap();
        assert_eq!(x, 2500.0);
        let u: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(u, u64::MAX);
    }

    #[test]
    fn round_trips_collections() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u32> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let empty: Vec<f64> = from_str("[]").unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Vec<u32> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parses_nested_objects() {
        let v: Value = super::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "c": null}"#).unwrap();
        let Value::Object(fields) = &v else { panic!() };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "a");
        assert_eq!(fields[1], ("c".to_string(), Value::Null));
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(s, "é😀");
    }

    #[test]
    fn from_slice_works() {
        let x: Vec<u64> = from_slice(b"[9]").unwrap();
        assert_eq!(x, vec![9]);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
    }
}
