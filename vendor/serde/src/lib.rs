//! Offline stand-in for `serde`.
//!
//! Instead of upstream's visitor architecture, this stub funnels everything
//! through a single dynamic [`value::Value`] tree: `Serialize` renders a
//! value into the tree, `Deserialize` reads one back out. That is all the
//! vendored `serde_json` and derive macros need, and it keeps the code small
//! enough to audit. The derive macros live in the vendored `serde_derive`
//! crate and are re-exported here behind the usual `derive` feature.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

pub mod de;
pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a dynamic value.
    fn serialize_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a dynamic value.
    fn deserialize_value(v: &Value) -> Result<Self, de::Error>;
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_bool()
            .ok_or_else(|| de::Error::msg("expected boolean"))
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| de::Error::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| de::Error::msg("integer out of range"))
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| de::Error::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| de::Error::msg("integer out of range"))
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64().ok_or_else(|| de::Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| de::Error::msg("expected number"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| de::Error::msg("expected string"))
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_array()
            .ok_or_else(|| de::Error::msg("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_object()
            .ok_or_else(|| de::Error::msg("expected object"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap would.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        v.as_object()
            .ok_or_else(|| de::Error::msg("expected object"))?
            .iter()
            .map(|(k, item)| Ok((k.clone(), V::deserialize_value(item)?)))
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| de::Error::msg("expected 2-element array"))?;
        Ok((A::deserialize_value(&a[0])?, B::deserialize_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, de::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| de::Error::msg("expected 3-element array"))?;
        Ok((
            A::deserialize_value(&a[0])?,
            B::deserialize_value(&a[1])?,
            C::deserialize_value(&a[2])?,
        ))
    }
}
