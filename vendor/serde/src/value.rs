//! The dynamic value tree everything serializes through.

/// A self-describing JSON-shaped value. Object fields keep insertion order
/// (a `Vec`, not a map) so serialized output is deterministic and matches
/// the declaration order of derived structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers (kept separate to preserve full `u64` range).
    U64(u64),
    /// Floating point numbers; non-finite values serialize as `null`.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A numeric view as `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// A numeric view as `u64` (rejects negatives and fractional floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            Value::F64(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// A numeric view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            Value::F64(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }
}

/// Shared `null` for out-of-range index lookups.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Object field lookup; yields `Null` for missing keys or non-objects
    /// (mirrors upstream `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.as_object().and_then(|o| get(o, key)).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Array element lookup; yields `Null` out of bounds or for non-arrays.
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! int_eq {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}
int_eq!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// First value stored under `key`, if any. Linear scan: derived structs have
/// a handful of fields, and insertion order must win on duplicates anyway.
pub fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Prepends an internal tag field to an object value — used by derived
/// `Serialize` impls for `#[serde(tag = "...")]` newtype variants.
pub fn tag_object(v: Value, tag: &str, variant: &str) -> Value {
    match v {
        Value::Object(mut fields) => {
            fields.insert(0, (tag.to_string(), Value::Str(variant.to_string())));
            Value::Object(fields)
        }
        other => panic!("cannot internally tag non-object value {other:?} with `{tag}: {variant}`"),
    }
}
