//! Deserialization error type.

/// Error produced while rebuilding a value from a [`crate::Value`] tree.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error carrying the given message.
    pub fn msg<M: std::fmt::Display>(m: M) -> Self {
        Error { msg: m.to_string() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
