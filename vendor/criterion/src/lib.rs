//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API this workspace's benches use
//! (`benchmark_group`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotations, the `criterion_group!`/`criterion_main!`
//! macros) over a simple wall-clock measurement loop: each benchmark is
//! warmed up once, then timed in doubling batches until it has run for at
//! least [`MIN_MEASURE`]. Results print one line per benchmark —
//! `<group>/<id>  time: <ns>/iter [thrpt: <elems>/s]` — which is all the
//! repo's tooling parses.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum cumulative measured time per benchmark.
const MIN_MEASURE: Duration = Duration::from_millis(60);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }
}

/// Throughput annotation attached to subsequent benchmarks in a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per routine call.
    PerIteration,
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function>/<parameter>` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the target sample count. Accepted for API compatibility; the
    /// measurement loop is time-based.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time budget. Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark that takes an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { ns_per_iter: None };
        f(&mut bencher, input);
        self.report(&id.into(), &bencher);
        self
    }

    /// Runs a plain benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { ns_per_iter: None };
        f(&mut bencher);
        self.report(&id.into(), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some(ns) = bencher.ns_per_iter else {
            println!("{}/{}  (no measurement)", self.name, id.id);
            return;
        };
        let mut line = format!("{}/{}  time: {ns:.1} ns/iter", self.name, id.id);
        match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                line += &format!("  thrpt: {:.0} elem/s", n as f64 * 1e9 / ns);
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                line += &format!("  thrpt: {:.0} B/s", n as f64 * 1e9 / ns);
            }
            _ => {}
        }
        println!("{line}");
    }
}

/// Measures a closure's wall-clock time.
pub struct Bencher {
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= MIN_MEASURE || iters >= 1 << 22 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters *= 4;
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is not
    /// measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < MIN_MEASURE && iters < 1 << 22 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.ns_per_iter = Some(total.as_nanos() as f64 / iters as f64);
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter_batched(
                || (0..n).collect::<Vec<u64>>(),
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
