//! Offline stand-in for `rand_distr` (0.4-compatible surface).
//!
//! Sampling algorithms are the textbook ones — inverse transform for
//! `Exp`/`Weibull`, Box–Muller for `Normal` — rather than upstream's
//! ziggurat tables, so streams are *not* bit-compatible with upstream.
//! They are deterministic, stateless (`Copy`, as the simulator's `Sampler`
//! enum requires) and statistically correct, which is what the workspace
//! needs. All samplers are f64-only; the generic parameter mirrors the
//! upstream spelling (`Exp<f64>` etc.).

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

pub use rand::distributions::{Distribution, Standard};
use rand::Rng;

/// Draws a uniform in the open interval (0, 1]; its log is always finite.
#[inline]
fn unit_pos<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // (0, 1]: take the [0, 1) sample and flip it around.
    1.0 - rng.gen::<f64>()
}

/// Error returned by the samplers' constructors on invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for ParamError {}

/// Upstream-compatible error aliases.
pub type ExpError = ParamError;
/// See [`ExpError`].
pub type NormalError = ParamError;
/// See [`ExpError`].
pub type WeibullError = ParamError;

/// Uniform over `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<F = f64> {
    lo: F,
    hi: F,
}

impl Uniform<f64> {
    /// Uniform over the half-open interval `[lo, hi)`. Panics when the
    /// interval is empty or inverted (upstream behaviour).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "Uniform::new called with empty range [{lo}, {hi})");
        Uniform { lo, hi }
    }

    /// Uniform over the closed interval `[lo, hi]`.
    pub fn new_inclusive(lo: f64, hi: f64) -> Self {
        assert!(
            lo <= hi,
            "Uniform::new_inclusive called with inverted range"
        );
        Uniform { lo, hi }
    }
}

impl Distribution<f64> for Uniform<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + rng.gen::<f64>() * (self.hi - self.lo)
    }
}

/// Exponential with rate λ (mean 1/λ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F = f64> {
    rate: F,
}

impl Exp<f64> {
    /// An exponential with the given rate; rejects non-positive or
    /// non-finite rates.
    pub fn new(rate: f64) -> Result<Self, ExpError> {
        if rate > 0.0 && rate.is_finite() {
            Ok(Exp { rate })
        } else {
            Err(ParamError("Exp rate must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_pos(rng).ln() / self.rate
    }
}

/// Normal (Gaussian) with the given mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    sd: F,
}

impl Normal<f64> {
    /// A normal with the given mean and standard deviation; rejects
    /// negative or non-finite deviations.
    pub fn new(mean: f64, sd: f64) -> Result<Self, NormalError> {
        if sd >= 0.0 && sd.is_finite() && mean.is_finite() {
            Ok(Normal { mean, sd })
        } else {
            Err(ParamError("Normal sd must be non-negative and finite"))
        }
    }
}

impl Distribution<f64> for Normal<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller, cosine branch only: two draws per sample keeps the
        // sampler stateless (`Copy`), which `dgsched_des::dist::Sampler`
        // relies on.
        let u = unit_pos(rng);
        let v = rng.gen::<f64>();
        let z = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        self.mean + self.sd * z
    }
}

/// Weibull with scale λ and shape k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull<F = f64> {
    scale: F,
    inv_shape: F,
}

impl Weibull<f64> {
    /// A Weibull with the given scale and shape; rejects non-positive or
    /// non-finite parameters. Argument order matches upstream:
    /// `Weibull::new(scale, shape)`.
    pub fn new(scale: f64, shape: f64) -> Result<Self, WeibullError> {
        if scale > 0.0 && shape > 0.0 && scale.is_finite() && shape.is_finite() {
            Ok(Weibull {
                scale,
                inv_shape: 1.0 / shape,
            })
        } else {
            Err(ParamError(
                "Weibull scale and shape must be positive and finite",
            ))
        }
    }
}

impl Distribution<f64> for Weibull<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.scale * (-unit_pos(rng).ln()).powf(self.inv_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(d: impl Distribution<f64>, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(11);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean() {
        let m = mean_of(Exp::new(0.1).unwrap(), 200_000);
        assert!((m - 10.0).abs() < 0.15, "mean={m}");
    }

    #[test]
    fn normal_mean_and_spread() {
        let d = Normal::new(50.0, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.1, "mean={mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.1, "sd={}", var.sqrt());
    }

    #[test]
    fn weibull_mean_matches_gamma_formula() {
        // k = 2, λ = 10 ⇒ mean = 10·Γ(1.5) = 10·(√π/2) ≈ 8.8623.
        let m = mean_of(Weibull::new(10.0, 2.0).unwrap(), 200_000);
        assert!((m - 8.8623).abs() < 0.1, "mean={m}");
    }

    #[test]
    fn uniform_bounds() {
        let d = Uniform::new(2.0, 3.0);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(Normal::new(1.0, -1.0).is_err());
        assert!(Weibull::new(0.0, 1.0).is_err());
    }
}
