//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros that
//! parse the item's raw token tree (no `syn`/`quote` available offline) and
//! emit impls against the vendored `serde` crate's `Value` model.
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs: named fields, tuple/newtype, unit
//! - enums: unit variants, newtype variants, struct variants
//! - container attrs: `#[serde(tag = "...")]`,
//!   `#[serde(rename_all = "snake_case" | "kebab-case" | "lowercase")]`
//! - field attrs: `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip_serializing_if = "path")]`
//!
//! Generics are rejected with a clear panic; unknown `#[serde(...)]` keys are
//! ignored so innocuous attributes don't break the build.

// Vendored stand-in: keep the upstream-compatible surface, not our lint style.
#![allow(clippy::all)]

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
}

struct Field {
    name: String,
    /// `None` = required; `Some(None)` = `#[serde(default)]`;
    /// `Some(Some(path))` = `#[serde(default = "path")]`.
    default: Option<Option<String>>,
    /// `#[serde(skip_serializing_if = "path")]`: the key is omitted from
    /// the serialized object when `path(&field)` is true.
    skip_serializing_if: Option<String>,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

/// Entry point for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("serde stub: generated Serialize impl failed to parse")
}

/// Entry point for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("serde stub: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Returns the `key [= "value"]` pairs inside a `#[serde(...)]` attribute
/// group, or an empty list for any other attribute (doc comments etc.).
fn serde_metas(attr: &Group) -> Vec<(String, Option<String>)> {
    let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
    let (head, args) = match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if g.delimiter() == Delimiter::Parenthesis =>
        {
            (id.to_string(), g.stream())
        }
        _ => return Vec::new(),
    };
    if head != "serde" {
        return Vec::new();
    }
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut metas = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        let key = match &toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                j += 1;
                continue;
            }
        };
        j += 1;
        let mut val = None;
        if let Some(TokenTree::Punct(p)) = toks.get(j) {
            if p.as_char() == '=' {
                j += 1;
                if let Some(TokenTree::Literal(l)) = toks.get(j) {
                    val = Some(strip_quotes(&l.to_string()));
                    j += 1;
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.get(j) {
            if p.as_char() == ',' {
                j += 1;
            }
        }
        metas.push((key, val));
    }
    metas
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Consumes leading `#[...]` attributes starting at `*i`, feeding any
/// `#[serde(...)]` metas to `on_meta`.
fn eat_attrs(toks: &[TokenTree], i: &mut usize, mut on_meta: impl FnMut(&str, Option<&str>)) {
    while *i < toks.len() {
        let is_pound = matches!(&toks[*i], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            return;
        }
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            for (k, v) in serde_metas(g) {
                on_meta(&k, v.as_deref());
            }
        }
        *i += 2;
    }
}

/// Skips `pub`, `pub(crate)`, `pub(super)` etc. starting at `*i`.
fn eat_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(&toks[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut attrs = ContainerAttrs::default();
    eat_attrs(&toks, &mut i, |k, v| match k {
        "tag" => attrs.tag = v.map(str::to_string),
        "rename_all" => attrs.rename_all = v.map(str::to_string),
        _ => {}
    });
    eat_visibility(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stub: expected item name, found {other}"),
    };
    i += 1;
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub: generics are not supported (on `{name}`)");
    }
    let data = match kind.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Struct(Fields::Unit),
            other => panic!("serde stub: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g))
            }
            other => panic!("serde stub: expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("serde stub: cannot derive for `{other} {name}`"),
    };
    Container { name, attrs, data }
}

/// Skips one type expression starting at `*i`, stopping after the top-level
/// `,` that ends it (or at the end of `toks`). Delimited groups are atomic
/// token trees, so only `<`/`>` nesting needs explicit tracking.
fn eat_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth: i32 = 0;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: &Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = None;
        let mut skip_serializing_if = None;
        eat_attrs(&toks, &mut i, |k, v| match k {
            "default" => default = Some(v.map(str::to_string)),
            "skip_serializing_if" => skip_serializing_if = v.map(str::to_string),
            _ => {}
        });
        if i >= toks.len() {
            break;
        }
        eat_visibility(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub: expected field name, found {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde stub: expected `:` after field `{name}`, found {other}"),
        }
        eat_type(&toks, &mut i);
        fields.push(Field {
            name,
            default,
            skip_serializing_if,
        });
    }
    fields
}

fn count_tuple_fields(body: &Group) -> usize {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < toks.len() {
        eat_type(&toks, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(body: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        eat_attrs(&toks, &mut i, |_, _| {});
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Rename rules
// ---------------------------------------------------------------------------

fn rename(rule: &Option<String>, name: &str) -> String {
    match rule.as_deref() {
        Some("snake_case") => delimited_lowercase(name, '_'),
        Some("kebab-case") => delimited_lowercase(name, '-'),
        Some("lowercase") => name.to_lowercase(),
        _ => name.to_string(),
    }
}

fn delimited_lowercase(name: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

const VALUE: &str = "::serde::value::Value";

fn push_field(target: &str, key: &str, value_expr: &str) -> String {
    format!("{target}.push((::std::string::String::from(\"{key}\"), {value_expr}));\n")
}

/// [`push_field`] guarded by the field's `skip_serializing_if` predicate
/// (called upstream-style, as `path(&field)`).
fn push_named_field(target: &str, f: &Field, field_ref: &str) -> String {
    let push = push_field(
        target,
        &f.name,
        &format!("::serde::Serialize::serialize_value({field_ref})"),
    );
    match &f.skip_serializing_if {
        None => push,
        Some(path) => format!("if !{path}({field_ref}) {{\n{push}}}\n"),
    }
}

fn str_value(s: &str) -> String {
    format!("{VALUE}::Str(::std::string::String::from(\"{s}\"))")
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Struct(Fields::Named(fs)) => {
            let mut s = new_object_vec("__f");
            for f in fs {
                s += &push_named_field("__f", f, &format!("&self.{}", f.name));
            }
            s + &format!("{VALUE}::Object(__f)")
        }
        Data::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Data::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!(
                "{VALUE}::Array(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => format!("{VALUE}::Null"),
        Data::Enum(vars) => {
            let mut s = String::from("match self {\n");
            for v in vars {
                s += &serialize_variant_arm(name, &c.attrs, v);
            }
            s + "}"
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> {VALUE} {{\n{body}\n}}\n}}\n"
    )
}

fn new_object_vec(var: &str) -> String {
    format!(
        "let mut {var}: ::std::vec::Vec<(::std::string::String, {VALUE})> = \
         ::std::vec::Vec::new();\n"
    )
}

fn serialize_variant_arm(name: &str, attrs: &ContainerAttrs, v: &Variant) -> String {
    let vname = rename(&attrs.rename_all, &v.name);
    let var = &v.name;
    match (&v.fields, &attrs.tag) {
        (Fields::Unit, None) => {
            format!("{name}::{var} => {},\n", str_value(&vname))
        }
        (Fields::Unit, Some(tag)) => format!(
            "{name}::{var} => {VALUE}::Object(::std::vec::Vec::from([\
             (::std::string::String::from(\"{tag}\"), {})])),\n",
            str_value(&vname)
        ),
        (Fields::Tuple(1), Some(tag)) => format!(
            "{name}::{var}(__inner) => ::serde::value::tag_object(\
             ::serde::Serialize::serialize_value(__inner), \"{tag}\", \"{vname}\"),\n"
        ),
        (Fields::Tuple(1), None) => format!(
            "{name}::{var}(__inner) => {VALUE}::Object(::std::vec::Vec::from([\
             (::std::string::String::from(\"{vname}\"), \
             ::serde::Serialize::serialize_value(__inner))])),\n"
        ),
        (Fields::Named(fs), tag) => {
            let pat: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
            let mut arm = format!("{name}::{var} {{ {} }} => {{\n", pat.join(", "));
            arm += &new_object_vec("__f");
            if let Some(tag) = tag {
                arm += &push_field("__f", tag, &str_value(&vname));
            }
            for f in fs {
                arm += &push_named_field("__f", f, &f.name);
            }
            if tag.is_some() {
                arm += &format!("{VALUE}::Object(__f)\n}},\n");
            } else {
                arm += &format!(
                    "{VALUE}::Object(::std::vec::Vec::from([\
                     (::std::string::String::from(\"{vname}\"), {VALUE}::Object(__f))]))\n}},\n"
                );
            }
            arm
        }
        (Fields::Tuple(n), _) => {
            panic!("serde stub: {n}-element tuple variant `{name}::{var}` unsupported")
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Expression that deserializes one named field out of the object slice
/// bound to `src`, honouring `#[serde(default)]` forms.
fn field_expr(f: &Field, src: &str, ty_name: &str) -> String {
    let fallback = match &f.default {
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        // No default: let the field's own impl look at Null (so Option
        // fields tolerate a missing key, like upstream), else report it.
        None => format!(
            "::serde::Deserialize::deserialize_value(&{VALUE}::Null)\
             .map_err(|_| ::serde::de::Error::msg(\
             \"missing field `{}` in {}\"))?",
            f.name, ty_name
        ),
    };
    format!(
        "match ::serde::value::get({src}, \"{key}\") {{\n\
         ::std::option::Option::Some(__x) => \
         ::serde::Deserialize::deserialize_value(__x)?,\n\
         ::std::option::Option::None => {fallback},\n}}",
        key = f.name
    )
}

fn named_fields_ctor(ty_path: &str, fs: &[Field], src: &str, ty_name: &str) -> String {
    let mut s = format!("{ty_path} {{\n");
    for f in fs {
        s += &format!("{}: {},\n", f.name, field_expr(f, src, ty_name));
    }
    s + "}"
}

fn expect_object(ty_name: &str) -> String {
    format!(
        "let __o = __v.as_object().ok_or_else(|| \
         ::serde::de::Error::msg(\"expected object for {ty_name}\"))?;\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::Struct(Fields::Named(fs)) => {
            if fs.is_empty() {
                format!("::std::result::Result::Ok({name} {{}})")
            } else {
                let mut s = expect_object(name);
                s += &format!(
                    "::std::result::Result::Ok({})",
                    named_fields_ctor(name, fs, "__o", name)
                );
                s
            }
        }
        Data::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Data::Struct(Fields::Tuple(n)) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::de::Error::msg(\"expected array for {name}\"))?;\n\
                 if __a.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::de::Error::msg(\
                 \"wrong tuple length for {name}\"));\n}}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__a[{i}])?"))
                .collect();
            s += &format!("::std::result::Result::Ok({name}({}))", items.join(", "));
            s
        }
        Data::Struct(Fields::Unit) => format!("::std::result::Result::Ok({name})"),
        Data::Enum(vars) => gen_deserialize_enum(name, &c.attrs, vars),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &{VALUE}) -> \
         ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize_enum(name: &str, attrs: &ContainerAttrs, vars: &[Variant]) -> String {
    let all_unit = vars.iter().all(|v| matches!(v.fields, Fields::Unit));
    if let Some(tag) = &attrs.tag {
        // Internally tagged: {"<tag>": "<variant>", ...fields}.
        let mut s = expect_object(name);
        s += &format!(
            "let __tag = ::serde::value::get(__o, \"{tag}\")\
             .and_then(|__t| __t.as_str()).ok_or_else(|| \
             ::serde::de::Error::msg(\"missing tag `{tag}` for {name}\"))?;\n\
             match __tag {{\n"
        );
        for v in vars {
            let vname = rename(&attrs.rename_all, &v.name);
            let arm = match &v.fields {
                Fields::Unit => format!("::std::result::Result::Ok({name}::{})", v.name),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{}(\
                     ::serde::Deserialize::deserialize_value(__v)?))",
                    v.name
                ),
                Fields::Named(fs) => format!(
                    "::std::result::Result::Ok({})",
                    named_fields_ctor(&format!("{name}::{}", v.name), fs, "__o", name)
                ),
                Fields::Tuple(n) => {
                    panic!("serde stub: {n}-element tuple variant in tagged enum `{name}`")
                }
            };
            s += &format!("\"{vname}\" => {arm},\n");
        }
        s += &format!(
            "__other => ::std::result::Result::Err(::serde::de::Error::msg(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
        );
        s
    } else if all_unit {
        // Plain string enum.
        let mut s = format!(
            "let __s = __v.as_str().ok_or_else(|| \
             ::serde::de::Error::msg(\"expected string for {name}\"))?;\n\
             match __s {{\n"
        );
        for v in vars {
            let vname = rename(&attrs.rename_all, &v.name);
            s += &format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{}),\n",
                v.name
            );
        }
        s += &format!(
            "__other => ::std::result::Result::Err(::serde::de::Error::msg(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
        );
        s
    } else {
        // Externally tagged: "<variant>" or {"<variant>": ...}.
        let mut s = String::from(
            "if let ::std::option::Option::Some(__s) = __v.as_str() {\nreturn match __s {\n",
        );
        for v in vars {
            if matches!(v.fields, Fields::Unit) {
                let vname = rename(&attrs.rename_all, &v.name);
                s += &format!(
                    "\"{vname}\" => ::std::result::Result::Ok({name}::{}),\n",
                    v.name
                );
            }
        }
        s += &format!(
            "__other => ::std::result::Result::Err(::serde::de::Error::msg(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}};\n}}\n"
        );
        s += &expect_object(name);
        s += &format!(
            "if __o.len() != 1 {{\n\
             return ::std::result::Result::Err(::serde::de::Error::msg(\
             \"expected single-key object for {name}\"));\n}}\n\
             let (__k, __inner) = (&__o[0].0, &__o[0].1);\n\
             match __k.as_str() {{\n"
        );
        for v in vars {
            let vname = rename(&attrs.rename_all, &v.name);
            let arm = match &v.fields {
                Fields::Unit => format!("::std::result::Result::Ok({name}::{})", v.name),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{}(\
                     ::serde::Deserialize::deserialize_value(__inner)?))",
                    v.name
                ),
                Fields::Named(fs) => format!(
                    "{{\nlet __o2 = __inner.as_object().ok_or_else(|| \
                     ::serde::de::Error::msg(\
                     \"expected object for variant `{vname}` of {name}\"))?;\n\
                     ::std::result::Result::Ok({})\n}}",
                    named_fields_ctor(&format!("{name}::{}", v.name), fs, "__o2", name)
                ),
                Fields::Tuple(n) => {
                    panic!("serde stub: {n}-element tuple variant in enum `{name}`")
                }
            };
            s += &format!("\"{vname}\" => {arm},\n");
        }
        s += &format!(
            "__other => ::std::result::Result::Err(::serde::de::Error::msg(\
             format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}"
        );
        s
    }
}
