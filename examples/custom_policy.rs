//! Extending the library: plug a custom bag-selection policy into the
//! simulator and race it against the paper's five.
//!
//! The example implements "Fewest-Remaining-Tasks" (FRT): serve the bag
//! closest to completion. Like the paper's policies it is knowledge-free —
//! it reads only the scheduler's own queue bookkeeping, never task lengths
//! or machine speeds. (It is the bag-level cousin of SRPT, and inherits its
//! classic weakness: big bags can starve.)
//!
//! ```text
//! cargo run --release -p dgsched-core --example custom_policy
//! ```

use dgsched_core::policy::{BagSelection, PolicyKind, View};
use dgsched_core::sim::{simulate, simulate_with, SimConfig};
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotId, BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

/// Fewest-Remaining-Tasks bag selection.
#[derive(Debug, Default)]
struct FewestRemainingTasks;

impl BagSelection for FewestRemainingTasks {
    fn name(&self) -> &'static str {
        "FRT"
    }

    fn select(&mut self, view: &View<'_>) -> Option<BotId> {
        view.active()
            .iter()
            .copied()
            .filter(|&id| view.dispatchable(id))
            .min_by_key(|&id| {
                let bag = view.bag(id);
                bag.total_tasks() - bag.done
            })
    }
}

fn main() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::MED);
    let spec = WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::Medium,
        count: 25,
    };

    let mut results: Vec<(String, f64)> = Vec::new();
    // The built-in five...
    for kind in PolicyKind::all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let grid = grid_cfg.build(&mut rng);
        let workload = spec.generate(&grid_cfg, &mut rng);
        let r = simulate(&grid, &workload, kind, &SimConfig::with_seed(11));
        results.push((kind.paper_name().to_string(), r.mean_turnaround()));
    }
    // ...and the custom one, via `simulate_with`.
    {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let grid = grid_cfg.build(&mut rng);
        let workload = spec.generate(&grid_cfg, &mut rng);
        let r = simulate_with(
            &grid,
            &workload,
            Box::new(FewestRemainingTasks),
            &SimConfig::with_seed(11),
        );
        results.push(("FRT (custom)".to_string(), r.mean_turnaround()));
    }

    results.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("Hom-MedAvail, g=25000 s, U=75 %, {} bags\n", spec.count);
    println!("policy          avg turnaround (s)");
    for (name, t) in &results {
        println!("{name:<15} {t:>17.0}");
    }
    println!("\n→ implement `BagSelection` and hand it to `simulate_with` to test\n  your own policy under identical workloads and failure traces.");
}
