//! Prototyping with the process layer: a back-of-envelope checkpointing
//! model written as `async` processes, cross-checked against Young's
//! formula — useful for sanity-checking parameters before a full grid run.
//!
//! One machine executes one long task, checkpointing every τ seconds;
//! failures arrive as a Poisson process and roll the task back to the last
//! checkpoint. The simulated completion time as a function of τ should dip
//! near Young's τ* = sqrt(2·δ·MTBF), just as the full simulator's E7
//! ablation shows at system scale.
//!
//! ```text
//! cargo run --release -p dgsched-core --example process_model
//! ```

use dgsched_des::dist::DistConfig;
use dgsched_des::process::Sim;
use dgsched_grid::checkpoint::young_interval;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Simulates one task of `work` wall-seconds with checkpoint interval
/// `tau` and checkpoint cost `delta`, under exponential failures of the
/// given MTBF. Returns the completion time.
fn run_once(work: f64, tau: f64, delta: f64, mtbf: f64, seed: u64) -> f64 {
    let sim = Sim::new();
    let h = sim.clone();
    let done_at = Rc::new(RefCell::new(0.0));
    let out = done_at.clone();
    sim.spawn(async move {
        let mut rng = StdRng::seed_from_u64(seed);
        let fail = DistConfig::Exponential { mean: mtbf }.sampler();
        let mut saved = 0.0; // wall-progress preserved at the server
        let mut next_failure = fail.sample(&mut rng);
        loop {
            // Work until the next checkpoint (or completion), unless a
            // failure lands first.
            let segment = tau.min(work - saved);
            let t0 = h.now().as_secs();
            if next_failure <= t0 + segment {
                // Crash mid-segment: lose progress since `saved`, pay a
                // repair delay, draw the next failure.
                h.delay((next_failure - t0).max(0.0) + 60.0).await;
                next_failure = h.now().as_secs() + fail.sample(&mut rng);
                continue;
            }
            h.delay(segment).await;
            saved += segment;
            if saved >= work {
                break;
            }
            // Write the checkpoint (failures during the write void it —
            // modelled here as simply not advancing `saved` further).
            if next_failure > h.now().as_secs() + delta {
                h.delay(delta).await;
            }
        }
        *out.borrow_mut() = h.now().as_secs();
    });
    sim.run();
    let t = *done_at.borrow();
    t
}

fn main() {
    let work = 50_000.0; // wall-seconds of compute
    let delta = 480.0; // mean checkpoint cost (the paper's U[240,720])
    let mtbf = 5_400.0; // MedAvail machine
    let young = young_interval(delta, mtbf);
    println!("one task of {work:.0} s wall compute, δ = {delta:.0} s, MTBF = {mtbf:.0} s");
    println!("Young's τ* = {young:.0} s\n");
    println!("τ (s)      mean completion (s)");
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let tau = young * factor;
        let mean: f64 = (0..200)
            .map(|s| run_once(work, tau, delta, mtbf, s))
            .sum::<f64>()
            / 200.0;
        let marker = if factor == 1.0 { "  ← Young" } else { "" };
        println!("{tau:>8.0}   {mean:>12.0}{marker}");
    }
    println!(
        "\n→ the dip near τ* previews the full-system E7 ablation\n  (cargo run --release -p dgsched-bench --bin ablation_checkpoint)."
    );
}
