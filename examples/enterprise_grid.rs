//! Enterprise desktop grid capacity planning: how hard can we load the
//! company's desktops before turnaround degrades?
//!
//! Enterprise grids are the paper's HighAvail configuration ("a relatively
//! high stability", §4.3). This example fixes the platform and the
//! application type, sweeps the offered load from 30 % to 90 % utilization,
//! and reports how turnaround inflates relative to an unloaded grid — the
//! curve a capacity planner needs.
//!
//! ```text
//! cargo run --release -p dgsched-core --example enterprise_grid
//! ```

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_des::time::SimTime;
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{bag_demand, BotType, PoissonArrivals, Workload};
use dgsched_workload::{BagOfTasks, BotId};
use rand::SeedableRng;

/// Builds a workload at an arbitrary utilization (the paper's three levels
/// are just special cases of λ = U / D).
fn workload_at(u: f64, bot_type: BotType, count: usize, grid: &GridConfig, seed: u64) -> Workload {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let lambda = u / bag_demand(bot_type.app_size, grid);
    let arrivals = PoissonArrivals::new(lambda).arrival_times(count, &mut rng);
    let bags = arrivals
        .into_iter()
        .enumerate()
        .map(|(i, at)| BagOfTasks {
            id: BotId(i as u32),
            arrival: SimTime::new(at),
            tasks: bot_type.generate_tasks(&mut rng),
            granularity: bot_type.granularity,
        })
        .collect();
    Workload {
        bags,
        lambda,
        label: format!("U={u}"),
    }
}

fn main() {
    let grid_cfg = GridConfig::paper(Heterogeneity::HOM, Availability::HIGH);
    let bot_type = BotType::paper(5_000.0);
    let policy = PolicyKind::LongIdle;
    let bags = 40;

    // Baseline: a single bag on the empty grid ≈ pure makespan.
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let grid = grid_cfg.build(&mut rng);
    let solo = workload_at(0.01, bot_type, 1, &grid_cfg, 99);
    let baseline = simulate(&grid, &solo, policy, &SimConfig::with_seed(1)).mean_turnaround();
    println!(
        "enterprise platform: Hom-HighAvail, g=5000 s, policy {}, unloaded turnaround {:.0} s\n",
        policy.paper_name(),
        baseline
    );

    println!("utilization  avg turnaround  slowdown vs unloaded");
    for u in [0.3, 0.5, 0.7, 0.8, 0.9] {
        let workload = workload_at(u, bot_type, bags, &grid_cfg, 7);
        let r = simulate(&grid, &workload, policy, &SimConfig::with_seed(7));
        let label = if r.saturated { " (saturated)" } else { "" };
        println!(
            "{:>10.0}%  {:>14.0}  {:>19.2}x{label}",
            u * 100.0,
            r.mean_turnaround(),
            r.mean_turnaround() / baseline
        );
    }
    println!(
        "\n→ the knee of this curve is the sustainable submission rate; past it\n  waiting time dominates turnaround (§3.3's motivation for LongIdle)."
    );
}
