//! Configuring the simulator from machine traces.
//!
//! The paper's availability model comes from fitted machine traces (its
//! ref \[12\]). Given a real desktop-grid trace you would: (1) extract
//! up/down durations, (2) fit a Weibull to the up-times and a Normal to
//! the repairs, (3) drive the simulator with the fitted model. This
//! example runs that exact pipeline on a synthetic trace — record, fit,
//! validate, simulate — so the workflow is ready for real data.
//!
//! ```text
//! cargo run --release -p dgsched-core --example trace_analysis
//! ```

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_grid::trace::AvailabilityTrace;
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

fn main() {
    // 1. "Collect" a trace: 100 machines observed for ~4 months. A real
    //    deployment would parse monitoring logs into the same structure.
    let ground_truth = Availability::MED;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let trace = AvailabilityTrace::record(&ground_truth, 100, 1e7, &mut rng);
    println!(
        "trace: {} machines, {} failures, empirical availability {:.1} %",
        trace.machines.len(),
        trace.failures(),
        trace.empirical_availability() * 100.0
    );

    // 2. Fit the model back from raw durations.
    let fitted = trace.fit().expect("trace has enough cycles to fit");
    println!(
        "fitted model: MTBF {:.0} s, long-run availability {:.1} % (truth: {:.1} %)",
        fitted.mtbf(),
        fitted.long_run_availability() * 100.0,
        ground_truth.long_run_availability() * 100.0
    );

    // 3. Simulate the same workload under the ground-truth process and the
    //    fitted one; close turnarounds validate the pipeline.
    let workload_spec = WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::Low,
        count: 15,
    };
    let run = |availability: Availability, label: &str| {
        let cfg = GridConfig {
            total_power: 1000.0,
            heterogeneity: Heterogeneity::HOM,
            availability,
            checkpoint: CheckpointConfig::default(),
            outages: None,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let grid = cfg.build(&mut rng);
        let workload = workload_spec.generate(&cfg, &mut rng);
        let r = simulate(
            &grid,
            &workload,
            PolicyKind::FcfsShare,
            &SimConfig::with_seed(3),
        );
        println!("{label:<12} avg turnaround {:>7.0} s", r.mean_turnaround());
        r.mean_turnaround()
    };
    println!();
    let truth = run(ground_truth, "ground truth");
    let fit = run(fitted, "fitted");
    let gap = (truth - fit).abs() / truth * 100.0;
    println!("\n→ fitted-model turnaround within {gap:.1} % of ground truth;\n  swap the synthetic trace for your monitoring data and re-run.");
}
