//! Volunteer computing: pick a bag-selection policy for a volatile,
//! SETI@home-style platform.
//!
//! Volunteer hosts "come and go unpredictably with a relatively high
//! frequency" (§4.3) — the paper's LowAvail configuration. This example
//! compares all five policies on such a platform for a coarse-grained
//! science workload (many concurrent submitters) and prints the ranking.
//!
//! ```text
//! cargo run --release -p dgsched-core --example volunteer_computing
//! ```

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

fn main() {
    // Volunteer grid: heterogeneous home PCs, only 50 % available.
    let grid_cfg = GridConfig::paper(Heterogeneity::HET, Availability::LOW);

    // Parameter-sweep bags: 100 tasks of ~25 000 reference-seconds each,
    // submitted by many users at once (75 % target utilization).
    let spec = WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::Medium,
        count: 30,
    };

    println!(
        "volunteer platform: Het-LowAvail, g=25000 s, U=75 %, {} bags",
        spec.count
    );
    println!("\npolicy       avg turnaround  avg waiting  wasted  failures hit");

    let mut rows: Vec<(String, f64, f64, f64, u64)> = PolicyKind::all()
        .iter()
        .map(|&kind| {
            // Same seeds across policies: identical machines, arrivals and
            // failure traces (common random numbers).
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let grid = grid_cfg.build(&mut rng);
            let workload = spec.generate(&grid_cfg, &mut rng);
            let r = simulate(&grid, &workload, kind, &SimConfig::with_seed(7));
            assert!(!r.saturated, "{kind} saturated — grow the horizon");
            (
                kind.paper_name().to_string(),
                r.mean_turnaround(),
                r.mean_waiting(),
                r.wasted_fraction() * 100.0,
                r.counters.replicas_killed_failure,
            )
        })
        .collect();
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("turnaround is not NaN"));

    for (name, turnaround, waiting, wasted, failures) in &rows {
        println!("{name:<12} {turnaround:>14.0}  {waiting:>11.0}  {wasted:>5.1}%  {failures:>12}");
    }
    println!(
        "\n→ '{}' wins this configuration; on volatile grids replication-friendly\n  policies absorb host departures (the paper's Fig. 2 regime).",
        rows[0].0
    );
}
