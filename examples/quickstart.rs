//! Quickstart: simulate one multi-BoT workload on a desktop grid and print
//! per-bag and aggregate results.
//!
//! ```text
//! cargo run --release -p dgsched-core --example quickstart
//! ```

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate, SimConfig};
use dgsched_grid::{Availability, GridConfig, Heterogeneity};
use dgsched_workload::{BotType, Intensity, WorkloadSpec};
use rand::SeedableRng;

fn main() {
    // 1. A desktop grid: ~100 heterogeneous machines totalling power 1000,
    //    75 % available, with a checkpoint server (the paper's Het-MedAvail).
    let grid_cfg = GridConfig::paper(Heterogeneity::HET, Availability::MED);
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let grid = grid_cfg.build(&mut rng);
    println!(
        "grid: {} machines, nominal power {:.0}, effective power {:.0}",
        grid.len(),
        grid.nominal_power(),
        grid_cfg.effective_power()
    );

    // 2. A workload: 20 bags of 25 000 s-granularity tasks arriving as a
    //    Poisson stream sized for 50 % grid utilization.
    let spec = WorkloadSpec {
        bot_type: BotType::paper(25_000.0),
        intensity: Intensity::Low,
        count: 20,
    };
    let workload = spec.generate(&grid_cfg, &mut rng);
    println!(
        "workload: {} bags, {} tasks, λ = {:.2e} bags/s\n",
        workload.len(),
        workload.total_tasks(),
        workload.lambda
    );

    // 3. Schedule it with the LongIdle bag-selection policy on WQR-FT.
    let result = simulate(
        &grid,
        &workload,
        PolicyKind::LongIdle,
        &SimConfig::with_seed(42),
    );

    println!("bag  arrival(s)  waiting(s)  makespan(s)  turnaround(s)");
    for b in &result.bags {
        println!(
            "{:>3}  {:>10.0}  {:>10.0}  {:>11.0}  {:>13.0}",
            b.bag, b.arrival, b.waiting, b.makespan, b.turnaround
        );
    }
    println!(
        "\navg turnaround {:.0} s (waiting {:.0} + makespan {:.0})",
        result.mean_turnaround(),
        result.mean_waiting(),
        result.mean_makespan()
    );
    println!(
        "replicas launched {}, killed by failures {}, killed as siblings {}",
        result.counters.replicas_launched,
        result.counters.replicas_killed_failure,
        result.counters.replicas_killed_sibling
    );
    println!(
        "checkpoints written {}, wasted machine occupancy {:.1} %",
        result.counters.checkpoints_written,
        result.wasted_fraction() * 100.0
    );
}
