//! Simulating an externally supplied workload: CSV import → simulate →
//! Gantt visualisation.
//!
//! Accounting logs from a real desktop grid can be exported as a
//! task-level CSV (`bag,arrival,work`); this example builds one inline,
//! imports it, runs the scheduler, and renders a machine-time Gantt chart
//! of the resulting schedule.
//!
//! ```text
//! cargo run --release -p dgsched-core --example imported_trace
//! ```

use dgsched_core::policy::PolicyKind;
use dgsched_core::sim::{simulate_observed, Gantt, SimConfig, TraceRecorder};
use dgsched_grid::{Availability, CheckpointConfig, GridConfig, Heterogeneity};
use dgsched_workload::import_tasks;
use rand::SeedableRng;

fn main() {
    // A small submission log: three users' bags, different shapes.
    let csv = "\
# bag,arrival,work   (work in reference-seconds)
0,0,9000
0,0,11000
0,0,9500
0,0,10500
1,1200,30000
1,1200,28000
2,2500,4000
2,2500,4200
2,2500,3900
2,2500,4100
2,2500,4050
2,2500,3950
";
    let workload = import_tasks(csv).expect("valid CSV");
    println!(
        "imported {} bags / {} tasks / {:.0} reference-seconds of work",
        workload.len(),
        workload.total_tasks(),
        workload.total_work()
    );

    // A small reliable grid so the Gantt stays readable.
    let grid_cfg = GridConfig {
        total_power: 60.0,
        heterogeneity: Heterogeneity::Homogeneous { power: 10.0 },
        availability: Availability::Always,
        checkpoint: CheckpointConfig::disabled(),
        outages: None,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let grid = grid_cfg.build(&mut rng);

    let mut trace = TraceRecorder::new();
    let cfg = SimConfig::with_seed(1);
    let result = simulate_observed(
        &grid,
        &workload,
        PolicyKind::FcfsShare.create(),
        &cfg,
        &mut trace,
    );

    println!("\nper-bag turnaround:");
    for b in &result.bags {
        println!(
            "  bag {}: arrived {:>5.0}s, turnaround {:>5.0}s (waited {:>4.0}s)",
            b.bag, b.arrival, b.turnaround, b.waiting
        );
    }

    let gantt = Gantt::from_trace(&trace);
    println!("\nschedule (FCFS-Share, replication threshold 2):\n");
    print!("{}", gantt.render(76, 12));
    println!(
        "\n→ glyphs are bag ids; note bag 1's long tasks replicated onto idle\n  machines and killed (freed) when the primary finishes."
    );
}
